//! Streaming, validated trace decoding and the replay instruction
//! source.

use std::io::Read;

use dol_isa::{InstBlock, InstSource, RetiredInst, SparseMemory, Trace};

use crate::codec::{decode_inst, DeltaState};
use crate::varint::read_u64;
use crate::{
    crc32, TraceError, TraceHeader, FRAME_END, FRAME_HEADER, FRAME_INST, FRAME_MEM, MAGIC,
    MAX_FRAME_BYTES, VERSION,
};

/// Reads a `dol-trace-v1` stream frame by frame.
///
/// Construction parses and validates the magic, version, and header
/// frame. [`read_memory`](Self::read_memory) then consumes the memory
/// frames (callers that only want the instruction stream may skip it —
/// [`next_inst`](Self::next_inst) discards any unread memory frames,
/// still validating their checksums). Only one instruction frame is
/// resident at a time.
pub struct TraceReader<R: Read> {
    r: R,
    header: TraceHeader,
    /// Current instruction frame payload (count prefix stripped).
    chunk: Vec<u8>,
    pos: usize,
    chunk_insts_left: u32,
    state: DeltaState,
    memory_done: bool,
    ended: bool,
    decoded_insts: u64,
    bytes_read: u64,
}

impl<R: Read> TraceReader<R> {
    /// Opens a stream: reads the magic, version, and header frame.
    pub fn new(mut r: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        read_exact_or(&mut r, &mut magic, "file magic")?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut ver = [0u8; 4];
        read_exact_or(&mut r, &mut ver, "format version")?;
        let version = u32::from_le_bytes(ver);
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let mut bytes_read = 12u64;
        let (tag, payload) = read_frame(&mut r, &mut bytes_read)?
            .ok_or(TraceError::Truncated("missing header frame"))?;
        if tag != FRAME_HEADER {
            return Err(TraceError::Corrupt(format!(
                "expected header frame, found tag {tag:#04x}"
            )));
        }
        let header = parse_header(&payload)?;
        Ok(TraceReader {
            r,
            header,
            chunk: Vec::new(),
            pos: 0,
            chunk_insts_left: 0,
            state: DeltaState::new(),
            memory_done: false,
            ended: false,
            decoded_insts: 0,
            bytes_read,
        })
    }

    /// The header frame's metadata.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Bytes consumed from the underlying stream so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Instructions decoded so far.
    pub fn insts_decoded(&self) -> u64 {
        self.decoded_insts
    }

    /// Reconstructs the memory image from the memory frames. Must be
    /// called before the first [`next_inst`](Self::next_inst); returns an
    /// empty image for a trace with no memory section.
    pub fn read_memory(&mut self) -> Result<SparseMemory, TraceError> {
        assert!(
            !self.memory_done,
            "read_memory may only be called once, before next_inst"
        );
        let mut mem = SparseMemory::new();
        loop {
            let Some((tag, payload)) = read_frame(&mut self.r, &mut self.bytes_read)? else {
                return Err(TraceError::Truncated("missing end frame"));
            };
            if tag != FRAME_MEM {
                // The one-frame lookahead that found the end of the
                // memory section is consumed eagerly: it is either the
                // first instruction chunk or the end frame.
                match tag {
                    FRAME_INST => self.load_inst_chunk(payload)?,
                    FRAME_END => self.check_end(&payload)?,
                    _ => {
                        return Err(TraceError::Corrupt(format!(
                            "unexpected frame tag {tag:#04x}"
                        )))
                    }
                }
                self.memory_done = true;
                return Ok(mem);
            }
            decode_memory_frame(&payload, &mut mem)?;
        }
    }

    fn load_inst_chunk(&mut self, payload: Vec<u8>) -> Result<(), TraceError> {
        if payload.len() < 4 {
            return Err(TraceError::Corrupt(
                "instruction frame smaller than its count prefix".into(),
            ));
        }
        let count = u32::from_le_bytes(payload[..4].try_into().expect("4 bytes"));
        if count == 0 {
            return Err(TraceError::Corrupt("empty instruction frame".into()));
        }
        self.chunk = payload;
        self.pos = 4;
        self.chunk_insts_left = count;
        self.state = DeltaState::new();
        Ok(())
    }

    fn check_end(&mut self, payload: &[u8]) -> Result<(), TraceError> {
        if payload.len() != 8 {
            return Err(TraceError::Corrupt(format!(
                "end frame payload is {} bytes, expected 8",
                payload.len()
            )));
        }
        let total = u64::from_le_bytes(payload.try_into().expect("8 bytes"));
        if total != self.decoded_insts || total != self.header.insts {
            return Err(TraceError::Corrupt(format!(
                "instruction count mismatch: header {}, end frame {}, decoded {}",
                self.header.insts, total, self.decoded_insts
            )));
        }
        self.ended = true;
        Ok(())
    }

    /// Advances frames until the current chunk holds an undecoded
    /// instruction. Returns `false` at a validated end of stream.
    fn refill(&mut self) -> Result<bool, TraceError> {
        loop {
            if self.ended {
                return Ok(false);
            }
            if self.chunk_insts_left > 0 {
                return Ok(true);
            }
            let (tag, payload) = read_frame(&mut self.r, &mut self.bytes_read)?
                .ok_or(TraceError::Truncated("missing end frame"))?;
            match tag {
                FRAME_MEM if !self.memory_done => {
                    // Caller skipped read_memory; the image is discarded
                    // but the frame is still checksum-validated (done in
                    // read_frame) and structurally decoded.
                    let mut scratch = SparseMemory::new();
                    decode_memory_frame(&payload, &mut scratch)?;
                }
                FRAME_INST => {
                    self.memory_done = true;
                    self.load_inst_chunk(payload)?;
                }
                FRAME_END => {
                    self.memory_done = true;
                    self.check_end(&payload)?;
                }
                _ => {
                    return Err(TraceError::Corrupt(format!(
                        "unexpected frame tag {tag:#04x}"
                    )))
                }
            }
        }
    }

    /// Decodes one instruction out of the current chunk (which must hold
    /// one — see [`refill`](Self::refill)), maintaining the counters and
    /// the frame-exhaustion check exactly like the one-at-a-time path.
    #[inline]
    fn decode_one(&mut self) -> Result<RetiredInst, TraceError> {
        let inst = decode_inst(&self.chunk, &mut self.pos, &mut self.state)?;
        self.chunk_insts_left -= 1;
        self.decoded_insts += 1;
        if self.chunk_insts_left == 0 && self.pos != self.chunk.len() {
            return Err(TraceError::Corrupt(format!(
                "instruction frame has {} trailing bytes",
                self.chunk.len() - self.pos
            )));
        }
        Ok(inst)
    }

    /// Decodes the next instruction, or returns `Ok(None)` at a
    /// validated end of stream.
    pub fn next_inst(&mut self) -> Result<Option<RetiredInst>, TraceError> {
        if !self.refill()? {
            return Ok(None);
        }
        self.decode_one().map(Some)
    }

    /// Fills `block` with up to `block.capacity()` instructions in one
    /// batched pass over the chunk slice — the frame bookkeeping runs
    /// once per refill instead of once per instruction, which is what
    /// keeps decode MB/s off the critical path of replay-heavy serve
    /// workloads. An empty block afterwards means end of stream.
    ///
    /// On a decode error the block keeps the instructions decoded before
    /// the failure (the same prefix the one-at-a-time path would have
    /// delivered) and the error is returned; the stream is unusable
    /// afterwards.
    pub fn next_block(&mut self, block: &mut InstBlock) -> Result<(), TraceError> {
        block.clear();
        while block.len() < block.capacity() {
            if !self.refill()? {
                return Ok(());
            }
            let n = (self.chunk_insts_left as usize).min(block.capacity() - block.len());
            for _ in 0..n {
                block.push(self.decode_one()?);
            }
        }
        Ok(())
    }
}

/// Adapts a [`TraceReader`] into an infallible [`InstSource`] for the
/// timing model's generic hot edge.
///
/// A decode failure ends the stream; the run completes on the
/// instructions decoded so far and the caller must check
/// [`error`](Self::error) afterwards (the harness treats a stored error
/// — or a short stream — as fatal).
pub struct ReplaySource<R: Read> {
    reader: TraceReader<R>,
    error: Option<TraceError>,
}

impl<R: Read> ReplaySource<R> {
    /// Wraps a reader positioned at the instruction section (i.e. after
    /// [`TraceReader::read_memory`]).
    pub fn new(reader: TraceReader<R>) -> Self {
        ReplaySource {
            reader,
            error: None,
        }
    }

    /// The first decode error hit mid-stream, if any.
    pub fn error(&self) -> Option<&TraceError> {
        self.error.as_ref()
    }

    /// The underlying reader (for byte/instruction counters).
    pub fn reader(&self) -> &TraceReader<R> {
        &self.reader
    }
}

impl<R: Read> InstSource for ReplaySource<R> {
    #[inline]
    fn next_inst(&mut self) -> Option<RetiredInst> {
        if self.error.is_some() {
            return None;
        }
        match self.reader.next_inst() {
            Ok(inst) => inst,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }

    fn next_block(&mut self, block: &mut InstBlock) {
        if self.error.is_some() {
            block.clear();
            return;
        }
        if let Err(e) = self.reader.next_block(block) {
            // The block keeps the prefix decoded before the failure —
            // exactly the instructions the per-inst path would have
            // yielded; the next call returns an empty block.
            self.error = Some(e);
        }
    }
}

/// Decodes a whole trace: header, memory image, and instruction stream.
pub fn decode_workload<R: Read>(r: R) -> Result<(TraceHeader, SparseMemory, Trace), TraceError> {
    let mut reader = TraceReader::new(r)?;
    let memory = reader.read_memory()?;
    let mut trace = Trace::new();
    while let Some(inst) = reader.next_inst()? {
        trace.push(inst);
    }
    Ok((reader.header, memory, trace))
}

fn parse_header(payload: &[u8]) -> Result<TraceHeader, TraceError> {
    if payload.len() < 2 {
        return Err(TraceError::Corrupt("header frame too small".into()));
    }
    let name_len = u16::from_le_bytes(payload[..2].try_into().expect("2 bytes")) as usize;
    let rest = &payload[2..];
    if rest.len() != name_len + 16 {
        return Err(TraceError::Corrupt(format!(
            "header frame is {} bytes, expected {}",
            payload.len(),
            2 + name_len + 16
        )));
    }
    let name = std::str::from_utf8(&rest[..name_len])
        .map_err(|_| TraceError::Corrupt("workload name is not UTF-8".into()))?
        .to_string();
    let seed = u64::from_le_bytes(rest[name_len..name_len + 8].try_into().expect("8 bytes"));
    let insts = u64::from_le_bytes(rest[name_len + 8..].try_into().expect("8 bytes"));
    Ok(TraceHeader { name, seed, insts })
}

fn decode_memory_frame(payload: &[u8], mem: &mut SparseMemory) -> Result<(), TraceError> {
    if payload.len() < 2 {
        return Err(TraceError::Corrupt("memory frame too small".into()));
    }
    let count = u16::from_le_bytes(payload[..2].try_into().expect("2 bytes")) as usize;
    let mut pos = 2;
    let mut page = 0u64;
    let mut words = [0u64; SparseMemory::PAGE_WORDS];
    for _ in 0..count {
        page = page.wrapping_add(read_u64(payload, &mut pos)?);
        for w in words.iter_mut() {
            *w = read_u64(payload, &mut pos)?;
        }
        mem.write_words(page * 4096, &words);
    }
    if pos != payload.len() {
        return Err(TraceError::Corrupt(format!(
            "memory frame has {} trailing bytes",
            payload.len() - pos
        )));
    }
    Ok(())
}

/// Reads one frame: `Ok(None)` at a clean EOF on the tag byte,
/// `Err(Truncated)` if the stream dies inside the frame.
fn read_frame<R: Read>(
    r: &mut R,
    bytes_read: &mut u64,
) -> Result<Option<(u8, Vec<u8>)>, TraceError> {
    let mut tag = [0u8; 1];
    loop {
        match r.read(&mut tag) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(TraceError::Io(e)),
        }
    }
    let mut len4 = [0u8; 4];
    read_exact_or(r, &mut len4, "frame length")?;
    let len = u32::from_le_bytes(len4);
    if len > MAX_FRAME_BYTES {
        return Err(TraceError::Corrupt(format!(
            "frame declares {len} payload bytes (cap {MAX_FRAME_BYTES})"
        )));
    }
    let mut crc4 = [0u8; 4];
    read_exact_or(r, &mut crc4, "frame checksum")?;
    let expect = u32::from_le_bytes(crc4);
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, "frame payload")?;
    let got = crc32(&payload);
    if got != expect {
        let frame = match tag[0] {
            FRAME_HEADER => "header",
            FRAME_MEM => "memory",
            FRAME_INST => "insts",
            FRAME_END => "end",
            _ => "unknown",
        };
        return Err(TraceError::ChecksumMismatch { frame, expect, got });
    }
    *bytes_read += 9 + len as u64;
    Ok(Some((tag[0], payload)))
}

/// `read_exact` with EOF mapped to [`TraceError::Truncated`].
fn read_exact_or<R: Read>(r: &mut R, buf: &mut [u8], ctx: &'static str) -> Result<(), TraceError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Truncated(ctx)
        } else {
            TraceError::Io(e)
        }
    })
}
