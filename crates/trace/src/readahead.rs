//! Double-buffered read-ahead: overlaps file I/O with decode.
//!
//! [`TraceReader`](crate::TraceReader) consumes its input synchronously
//! — every frame boundary used to stall decode on a blocking `read`.
//! [`ReadAhead`] moves the raw reads onto a background thread that keeps
//! up to two block buffers in flight (a bounded rendezvous channel), so
//! the next chunk is already in memory by the time the decoder asks for
//! it. The wrapper is a plain [`Read`] impl: byte-for-byte transparent,
//! usable around any source, and the decoder stays single-threaded and
//! deterministic.

use std::io::Read;
use std::sync::mpsc::{sync_channel, Receiver};
use std::thread::JoinHandle;

/// Bytes fetched per background read.
const BLOCK_BYTES: usize = 256 << 10;

/// Buffers in flight beyond the one being drained (double buffering).
const QUEUE_DEPTH: usize = 2;

/// A [`Read`] adapter that prefetches the underlying stream on a
/// background thread, two blocks deep.
///
/// An I/O error on the background thread is delivered in order: reads
/// return the bytes fetched before the failure, then the error itself,
/// then EOF — the same sequence a foreground reader would have seen.
pub struct ReadAhead {
    rx: Receiver<std::io::Result<Vec<u8>>>,
    cur: Vec<u8>,
    pos: usize,
    done: bool,
    handle: Option<JoinHandle<()>>,
}

impl ReadAhead {
    /// Wraps `inner`, spawning the prefetch thread.
    pub fn new<R: Read + Send + 'static>(mut inner: R) -> Self {
        let (tx, rx) = sync_channel(QUEUE_DEPTH);
        let handle = std::thread::spawn(move || {
            loop {
                let mut buf = vec![0u8; BLOCK_BYTES];
                let mut filled = 0;
                // Fill the whole block (short reads are common on pipes);
                // a partial final block is sent as-is before EOF.
                let err = loop {
                    match inner.read(&mut buf[filled..]) {
                        Ok(0) => break None,
                        Ok(n) => {
                            filled += n;
                            if filled == buf.len() {
                                break None;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => break Some(e),
                    }
                };
                if filled > 0 {
                    buf.truncate(filled);
                    if tx.send(Ok(buf)).is_err() {
                        return; // consumer dropped — stop prefetching
                    }
                }
                match err {
                    Some(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                    None if filled < BLOCK_BYTES => return, // EOF
                    None => {}
                }
            }
        });
        ReadAhead {
            rx,
            cur: Vec::new(),
            pos: 0,
            done: false,
            handle: Some(handle),
        }
    }
}

impl Read for ReadAhead {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        while self.pos == self.cur.len() {
            if self.done {
                return Ok(0);
            }
            match self.rx.recv() {
                Ok(Ok(block)) => {
                    self.cur = block;
                    self.pos = 0;
                }
                Ok(Err(e)) => {
                    self.done = true;
                    return Err(e);
                }
                Err(_) => {
                    // Sender gone without an error: clean EOF.
                    self.done = true;
                    return Ok(0);
                }
            }
        }
        let n = out.len().min(self.cur.len() - self.pos);
        out[..n].copy_from_slice(&self.cur[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Drop for ReadAhead {
    fn drop(&mut self) {
        // Disconnect the channel (a sender blocked on the full queue
        // fails its send and exits), then reap the thread so no
        // prefetcher outlives its consumer.
        drop(std::mem::replace(&mut self.rx, sync_channel(0).1));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that yields `total` bytes of a deterministic pattern in
    /// deliberately awkward short reads.
    struct Chunky {
        total: usize,
        served: usize,
    }

    impl Read for Chunky {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.served == self.total {
                return Ok(0);
            }
            // Vary the short-read size to cross block boundaries.
            let n = out
                .len()
                .min(self.total - self.served)
                .min(1 + self.served % 4093);
            for (i, b) in out[..n].iter_mut().enumerate() {
                *b = ((self.served + i) as u64).wrapping_mul(0x9E37_79B9) as u8;
            }
            self.served += n;
            Ok(n)
        }
    }

    #[test]
    fn bytes_are_identical_to_the_inner_stream() {
        for total in [
            0usize,
            1,
            4096,
            BLOCK_BYTES,
            BLOCK_BYTES + 1,
            3 * BLOCK_BYTES + 17,
        ] {
            let mut direct = Vec::new();
            Chunky { total, served: 0 }
                .read_to_end(&mut direct)
                .unwrap();
            let mut ahead = Vec::new();
            ReadAhead::new(Chunky { total, served: 0 })
                .read_to_end(&mut ahead)
                .unwrap();
            assert_eq!(direct, ahead, "total {total}");
        }
    }

    #[test]
    fn errors_arrive_after_the_preceding_bytes() {
        struct Failing {
            served: usize,
        }
        impl Read for Failing {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.served >= 1000 {
                    return Err(std::io::Error::other("disk on fire"));
                }
                let n = out.len().min(1000 - self.served);
                out[..n].fill(0xAB);
                self.served += n;
                Ok(n)
            }
        }
        let mut r = ReadAhead::new(Failing { served: 0 });
        let mut buf = Vec::new();
        let err = r.read_to_end(&mut buf).unwrap_err();
        assert_eq!(err.to_string(), "disk on fire");
        // read_to_end rolls back its buffer on error, so count via
        // manual reads instead.
        let mut r = ReadAhead::new(Failing { served: 0 });
        let mut got = 0usize;
        let mut chunk = [0u8; 256];
        loop {
            match r.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    assert!(chunk[..n].iter().all(|b| *b == 0xAB));
                    got += n;
                }
                Err(e) => {
                    assert_eq!(e.to_string(), "disk on fire");
                    break;
                }
            }
        }
        assert_eq!(got, 1000, "all pre-error bytes are delivered first");
        // After the error the stream is at EOF.
        assert_eq!(r.read(&mut chunk).unwrap(), 0);
    }

    #[test]
    fn dropping_mid_stream_reaps_the_prefetcher() {
        let mut r = ReadAhead::new(Chunky {
            total: 10 * BLOCK_BYTES,
            served: 0,
        });
        let mut buf = [0u8; 64];
        assert!(r.read(&mut buf).unwrap() > 0);
        drop(r); // must not hang on the blocked sender
    }
}
