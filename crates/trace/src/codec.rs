//! Per-instruction binary encoding.
//!
//! One opcode byte (kind code in the low 4 bits, operand-presence flags
//! above), a zigzag-varint PC delta against the previous instruction,
//! optional register bytes, then a kind-specific payload. Memory
//! addresses are delta-encoded against the previous load/store address
//! (one shared stream — strided kernels interleave loads and stores over
//! the same regions); control-flow targets are delta-encoded against the
//! instruction's own PC, which keeps loop back-edges at one or two
//! bytes.
//!
//! The delta state resets at every instruction-frame boundary so frames
//! decode independently.

use dol_isa::{InstKind, Reg, RetiredInst};

use crate::varint::{read_u64, unzigzag, write_u64, zigzag};
use crate::TraceError;

const K_ALU: u8 = 0;
const K_LOAD: u8 = 1;
const K_STORE: u8 = 2;
const K_BRANCH_TAKEN: u8 = 3;
const K_BRANCH_NOT: u8 = 4;
const K_JUMP: u8 = 5;
const K_CALL: u8 = 6;
const K_RET: u8 = 7;
const K_OTHER: u8 = 8;

const FLAG_DST: u8 = 1 << 4;
const FLAG_SRC0: u8 = 1 << 5;
const FLAG_SRC1: u8 = 1 << 6;

/// The rolling prediction context for delta encoding.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeltaState {
    prev_pc: u64,
    prev_addr: u64,
}

impl DeltaState {
    pub(crate) fn new() -> Self {
        DeltaState::default()
    }
}

#[inline]
fn delta(from: u64, to: u64) -> u64 {
    zigzag(to.wrapping_sub(from) as i64)
}

#[inline]
fn undelta(from: u64, code: u64) -> u64 {
    from.wrapping_add(unzigzag(code) as u64)
}

/// Appends one encoded instruction to `buf`, updating `st`.
pub(crate) fn encode_inst(buf: &mut Vec<u8>, st: &mut DeltaState, inst: &RetiredInst) {
    let code = match inst.kind {
        InstKind::Alu { .. } => K_ALU,
        InstKind::Load { .. } => K_LOAD,
        InstKind::Store { .. } => K_STORE,
        InstKind::Branch { taken: true, .. } => K_BRANCH_TAKEN,
        InstKind::Branch { taken: false, .. } => K_BRANCH_NOT,
        InstKind::Jump { .. } => K_JUMP,
        InstKind::Call { .. } => K_CALL,
        InstKind::Ret { .. } => K_RET,
        InstKind::Other => K_OTHER,
    };
    let mut op = code;
    if inst.dst.is_some() {
        op |= FLAG_DST;
    }
    if inst.srcs[0].is_some() {
        op |= FLAG_SRC0;
    }
    if inst.srcs[1].is_some() {
        op |= FLAG_SRC1;
    }
    buf.push(op);
    write_u64(buf, delta(st.prev_pc, inst.pc));
    if let Some(r) = inst.dst {
        buf.push(r.index() as u8);
    }
    for r in inst.srcs.iter().flatten() {
        buf.push(r.index() as u8);
    }
    match inst.kind {
        InstKind::Alu { latency } => buf.push(latency),
        InstKind::Load { addr, value } => {
            write_u64(buf, delta(st.prev_addr, addr));
            write_u64(buf, value);
            st.prev_addr = addr;
        }
        InstKind::Store { addr } => {
            write_u64(buf, delta(st.prev_addr, addr));
            st.prev_addr = addr;
        }
        InstKind::Branch { target, .. } | InstKind::Jump { target } | InstKind::Ret { target } => {
            write_u64(buf, delta(inst.pc, target));
        }
        InstKind::Call { target, return_to } => {
            write_u64(buf, delta(inst.pc, target));
            write_u64(buf, delta(inst.pc, return_to));
        }
        InstKind::Other => {}
    }
    st.prev_pc = inst.pc;
}

#[inline]
fn read_reg(buf: &[u8], pos: &mut usize) -> Result<Reg, TraceError> {
    let Some(&b) = buf.get(*pos) else {
        return Err(TraceError::Corrupt(
            "register byte runs off chunk end".into(),
        ));
    };
    *pos += 1;
    Reg::from_index(b as usize)
        .ok_or_else(|| TraceError::Corrupt(format!("register index {b} out of range")))
}

/// Decodes one instruction from `buf` at `*pos`, updating `st`.
pub(crate) fn decode_inst(
    buf: &[u8],
    pos: &mut usize,
    st: &mut DeltaState,
) -> Result<RetiredInst, TraceError> {
    let Some(&op) = buf.get(*pos) else {
        return Err(TraceError::Corrupt("opcode byte runs off chunk end".into()));
    };
    *pos += 1;
    let code = op & 0x0F;
    if code > K_OTHER || op & 0x80 != 0 {
        return Err(TraceError::Corrupt(format!(
            "invalid opcode byte {op:#04x}"
        )));
    }
    let pc = undelta(st.prev_pc, read_u64(buf, pos)?);
    let dst = if op & FLAG_DST != 0 {
        Some(read_reg(buf, pos)?)
    } else {
        None
    };
    let src0 = if op & FLAG_SRC0 != 0 {
        Some(read_reg(buf, pos)?)
    } else {
        None
    };
    let src1 = if op & FLAG_SRC1 != 0 {
        Some(read_reg(buf, pos)?)
    } else {
        None
    };
    let kind = match code {
        K_ALU => {
            let Some(&latency) = buf.get(*pos) else {
                return Err(TraceError::Corrupt(
                    "latency byte runs off chunk end".into(),
                ));
            };
            *pos += 1;
            InstKind::Alu { latency }
        }
        K_LOAD => {
            let addr = undelta(st.prev_addr, read_u64(buf, pos)?);
            let value = read_u64(buf, pos)?;
            st.prev_addr = addr;
            InstKind::Load { addr, value }
        }
        K_STORE => {
            let addr = undelta(st.prev_addr, read_u64(buf, pos)?);
            st.prev_addr = addr;
            InstKind::Store { addr }
        }
        K_BRANCH_TAKEN | K_BRANCH_NOT => InstKind::Branch {
            taken: code == K_BRANCH_TAKEN,
            target: undelta(pc, read_u64(buf, pos)?),
        },
        K_JUMP => InstKind::Jump {
            target: undelta(pc, read_u64(buf, pos)?),
        },
        K_CALL => {
            let target = undelta(pc, read_u64(buf, pos)?);
            let return_to = undelta(pc, read_u64(buf, pos)?);
            InstKind::Call { target, return_to }
        }
        K_RET => InstKind::Ret {
            target: undelta(pc, read_u64(buf, pos)?),
        },
        _ => InstKind::Other,
    };
    st.prev_pc = pc;
    Ok(RetiredInst {
        pc,
        kind,
        dst,
        srcs: [src0, src1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(insts: &[RetiredInst]) {
        let mut buf = Vec::new();
        let mut enc = DeltaState::new();
        for i in insts {
            encode_inst(&mut buf, &mut enc, i);
        }
        let mut dec = DeltaState::new();
        let mut pos = 0;
        for want in insts {
            let got = decode_inst(&buf, &mut pos, &mut dec).unwrap();
            assert_eq!(&got, want);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn every_kind_round_trips() {
        let r = |i: usize| Reg::from_index(i);
        round_trip(&[
            RetiredInst {
                pc: 0x1000,
                kind: InstKind::Alu { latency: 3 },
                dst: r(1),
                srcs: [r(2), r(3)],
            },
            RetiredInst {
                pc: 0x1004,
                kind: InstKind::Load {
                    addr: 0x8000,
                    value: u64::MAX,
                },
                dst: r(31),
                srcs: [r(0), None],
            },
            RetiredInst {
                pc: 0x1008,
                kind: InstKind::Store { addr: 0x7FF8 },
                dst: None,
                srcs: [r(4), r(5)],
            },
            RetiredInst {
                pc: 0x100C,
                kind: InstKind::Branch {
                    taken: true,
                    target: 0x1000,
                },
                dst: None,
                srcs: [r(6), None],
            },
            RetiredInst {
                pc: 0x1010,
                kind: InstKind::Branch {
                    taken: false,
                    target: 0x2000,
                },
                dst: None,
                srcs: [None, None],
            },
            RetiredInst {
                pc: 0x1014,
                kind: InstKind::Jump { target: 0x40 },
                dst: None,
                srcs: [None, None],
            },
            RetiredInst {
                pc: 0x44,
                kind: InstKind::Call {
                    target: 0x3000,
                    return_to: 0x48,
                },
                dst: None,
                srcs: [None, None],
            },
            RetiredInst {
                pc: 0x3000,
                kind: InstKind::Ret { target: 0x48 },
                dst: None,
                srcs: [None, None],
            },
            RetiredInst {
                pc: 0x48,
                kind: InstKind::Other,
                dst: None,
                srcs: [None, None],
            },
        ]);
    }

    #[test]
    fn sequential_stream_is_compact() {
        // A +4 PC stride and +8 address stride: the common case must
        // stay well under the 48-byte in-memory footprint.
        let insts: Vec<RetiredInst> = (0..1000u64)
            .map(|i| RetiredInst {
                pc: 0x1000 + 4 * i,
                kind: InstKind::Load {
                    addr: 0x8000 + 8 * i,
                    value: i % 5,
                },
                dst: Reg::from_index(1),
                srcs: [Reg::from_index(2), None],
            })
            .collect();
        let mut buf = Vec::new();
        let mut st = DeltaState::new();
        for i in &insts {
            encode_inst(&mut buf, &mut st, i);
        }
        assert!(
            buf.len() < insts.len() * 8,
            "{} bytes for {} insts",
            buf.len(),
            insts.len()
        );
        round_trip(&insts);
    }

    #[test]
    fn invalid_opcode_and_register_are_corrupt() {
        let mut st = DeltaState::new();
        // Kind code 9 does not exist.
        assert!(matches!(
            decode_inst(&[0x09, 0x00], &mut 0, &mut st),
            Err(TraceError::Corrupt(_))
        ));
        // High bit must be zero.
        assert!(matches!(
            decode_inst(&[0x80, 0x00], &mut 0, &mut st),
            Err(TraceError::Corrupt(_))
        ));
        // Register index 40 is out of range (opcode: ALU + dst flag).
        assert!(matches!(
            decode_inst(&[K_ALU | FLAG_DST, 0x00, 40, 1], &mut 0, &mut st),
            Err(TraceError::Corrupt(_))
        ));
    }
}
