#![warn(missing_docs)]

//! `dol-trace-v1`: a compact, versioned binary capture/replay format for
//! retired-instruction streams.
//!
//! The paper evaluates prefetchers on retired-instruction traces recorded
//! from real binaries under gem5. This crate gives the reproduction the
//! same decoupling: any workload the `dol_isa` VM can execute is recorded
//! once to disk and replayed through the timing model arbitrarily many
//! times — and, later, externally generated traces can be imported by
//! writing this format.
//!
//! # On-disk layout
//!
//! ```text
//! file    := magic version frame*
//! magic   := "DOLTRACE"                      (8 bytes)
//! version := u32 LE                          (currently 1)
//! frame   := tag u8 | payload_len u32 LE | crc32 u32 LE | payload
//! ```
//!
//! Frames appear in a fixed order: one `'H'` header frame (workload name,
//! seed, declared instruction count), zero or more `'M'` memory frames
//! (the final memory image pointer prefetchers dereference during
//! replay), one or more `'I'` instruction frames, and exactly one `'E'`
//! end frame (total instruction count, cross-checked against the header
//! and against what was actually decoded). Every payload is covered by a
//! CRC-32 (IEEE); a missing end frame distinguishes truncation from
//! corruption.
//!
//! Instruction frames are self-contained: the PC/address delta state
//! resets at each frame boundary, so a frame can be decoded knowing only
//! its own bytes. Within a frame each [`RetiredInst`] is one opcode byte
//! (kind + operand-presence bits), a zigzag-varint PC delta, optional
//! register bytes, and a kind-specific payload with memory addresses
//! delta-encoded against the previous memory access and control targets
//! delta-encoded against the instruction's own PC. Typical streams
//! encode in 3–6 bytes per instruction.
//!
//! Memory frames carry up to [`PAGES_PER_FRAME`] 4 KiB pages, addresses
//! ascending, each page a varint address delta followed by 512 varint
//! words.
//!
//! [`TraceWriter`] and [`TraceReader`] stream chunk by chunk — neither
//! ever materializes the whole instruction stream. [`ReplaySource`]
//! adapts a reader into a [`dol_isa::InstSource`] so a file on disk is a
//! drop-in, fully monomorphized instruction source for
//! `dol_cpu::System::run` — no `dyn` dispatch per retired instruction.
//!
//! ```
//! use dol_isa::{InstKind, RetiredInst, SparseMemory};
//! use dol_trace::{TraceHeader, TraceReader, TraceWriter};
//!
//! let inst = RetiredInst {
//!     pc: 0x1000,
//!     kind: InstKind::Load { addr: 0x8000, value: 7 },
//!     dst: Some(dol_isa::Reg::R1),
//!     srcs: [Some(dol_isa::Reg::R2), None],
//! };
//! let header = TraceHeader { name: "demo".into(), seed: 1, insts: 1 };
//! let mut w = TraceWriter::new(Vec::new(), &header).unwrap();
//! w.write_memory(&SparseMemory::new()).unwrap();
//! w.push(&inst).unwrap();
//! let (bytes, _size) = w.finish().unwrap();
//!
//! let mut r = TraceReader::new(&bytes[..]).unwrap();
//! assert_eq!(r.header().name, "demo");
//! let _memory = r.read_memory().unwrap();
//! assert_eq!(r.next_inst().unwrap(), Some(inst));
//! assert_eq!(r.next_inst().unwrap(), None);
//! ```

mod codec;
mod crc;
mod readahead;
mod reader;
pub mod telemetry;
mod varint;
mod writer;

pub use crc::crc32;
pub use readahead::ReadAhead;
pub use reader::{decode_workload, ReplaySource, TraceReader};
pub use writer::{encode_workload, TraceWriter};

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"DOLTRACE";

/// The format version this crate reads and writes.
pub const VERSION: u32 = 1;

/// Frame tags.
pub(crate) const FRAME_HEADER: u8 = b'H';
pub(crate) const FRAME_MEM: u8 = b'M';
pub(crate) const FRAME_INST: u8 = b'I';
pub(crate) const FRAME_END: u8 = b'E';

/// Upper bound on a single frame's payload; anything larger is treated
/// as corruption rather than allocated.
pub(crate) const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Instruction frames are flushed once their encoded payload reaches
/// this size.
pub(crate) const CHUNK_TARGET_BYTES: usize = 64 << 10;

/// Maximum 4 KiB pages per memory frame.
pub const PAGES_PER_FRAME: usize = 32;

/// The metadata carried by a trace file's header frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Workload name (for harness path mapping and sanity checks).
    pub name: String,
    /// The seed the workload was built with.
    pub seed: u64,
    /// Total retired instructions in the file. Declared up front so
    /// readers can validate truncation and pre-size buffers; the writer
    /// refuses to finish on a mismatch.
    pub insts: u64,
}

/// Everything that can go wrong reading or writing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure (not a format problem).
    Io(std::io::Error),
    /// The stream does not start with the `DOLTRACE` magic.
    BadMagic,
    /// The file declares a format version this reader does not support.
    UnsupportedVersion(u32),
    /// The stream ended before the bytes it promised (mid-frame, or
    /// missing the end frame). The context names what was being read.
    Truncated(&'static str),
    /// A frame's payload does not match its recorded CRC-32.
    ChecksumMismatch {
        /// Which frame kind failed ("header", "memory", "insts", "end").
        frame: &'static str,
        /// CRC recorded in the frame.
        expect: u32,
        /// CRC computed over the payload.
        got: u32,
    },
    /// Structurally invalid content: bad frame tag, oversized frame,
    /// invalid kind/register encoding, or an instruction-count mismatch.
    Corrupt(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a dol-trace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported dol-trace version {v} (reader supports {VERSION})"
                )
            }
            TraceError::Truncated(ctx) => write!(f, "truncated trace: {ctx}"),
            TraceError::ChecksumMismatch { frame, expect, got } => write!(
                f,
                "checksum mismatch in {frame} frame: recorded {expect:#010x}, computed {got:#010x}"
            ),
            TraceError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}
