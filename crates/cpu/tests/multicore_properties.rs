//! Property tests for the shared-hierarchy scheduler: core arbitration
//! must be order-deterministic (same seed → identical event stream, no
//! matter in which order the cores' workloads and prefetchers were
//! constructed), and shared MSHR occupancy must stay within capacity.

use dol_core::Tpc;
use dol_cpu::{MultiRunResult, System, SystemConfig, Workload};
use dol_mem::{CollectSink, MemEvent, NullSink};
use dol_workloads::by_name;
use proptest::prelude::*;

/// One stride-heavy, one pointer-chasing, one scattered, one strided —
/// the archetypes the harness's co-run matrix exercises.
const MEMBERS: [&str; 4] = ["stream_sum", "listchase", "region_shuffle", "stride8_walk"];

fn capture(name: &str, seed: u64, insts: u64) -> Workload {
    let spec = by_name(name).expect("known workload");
    Workload::capture(spec.build_vm(seed), insts).expect("capture fits")
}

fn corun(ws: &[Workload; 4], build_reversed: bool) -> (Vec<MemEvent>, MultiRunResult) {
    let sys = System::new(SystemConfig::tiny(4));
    // Same per-core slots either way; only construction order differs.
    // Hidden global state in a prefetcher constructor would surface as
    // a diverging event stream.
    let mut ps = if build_reversed {
        let d = Tpc::full();
        let c = Tpc::full();
        let b = Tpc::full();
        let a = Tpc::full();
        [a, b, c, d]
    } else {
        [Tpc::full(), Tpc::full(), Tpc::full(), Tpc::full()]
    };
    let mut sink = CollectSink::new();
    let r = sys.run_corun(ws, &mut ps, &mut sink);
    (sink.into_events(), r)
}

proptest! {
    #[test]
    fn shared_llc_arbitration_is_order_deterministic(
        seed in 0u64..1 << 32,
        insts in 800u64..2_000,
    ) {
        let forward: [Workload; 4] = [0, 1, 2, 3].map(|i| capture(MEMBERS[i], seed, insts));
        // Capture the same workloads again in reverse order; as inputs
        // they are position-identical, so the runs must be too.
        let mut rev: Vec<Workload> = [3, 2, 1, 0]
            .iter()
            .map(|&i| capture(MEMBERS[i], seed, insts))
            .collect();
        rev.reverse();
        let reversed: [Workload; 4] = rev.try_into().unwrap_or_else(|_| panic!("4 workloads"));

        let (ev_a, r_a) = corun(&forward, false);
        let (ev_b, r_b) = corun(&reversed, true);
        prop_assert_eq!(&r_a.cores, &r_b.cores);
        prop_assert_eq!(&r_a.stats, &r_b.stats);
        prop_assert_eq!(ev_a.len(), ev_b.len());
        prop_assert!(ev_a == ev_b, "event streams must be identical");
    }
}

#[test]
fn shared_mshr_occupancy_stays_within_capacity() {
    let ws: [Workload; 4] = [0, 1, 2, 3].map(|i| capture(MEMBERS[i], 7, 4_000));
    let sys = System::new(SystemConfig::tiny(4));
    let mut ps = [Tpc::full(), Tpc::full(), Tpc::full(), Tpc::full()];
    let r = sys.run_corun(&ws, &mut ps, &mut NullSink);
    let h = &sys.config().hierarchy;
    let sh = &r.stats.shared;
    assert_eq!(sh.core_l1_mshr.len(), 4);
    for m in &sh.core_l1_mshr {
        assert!(m.peak_occupancy <= h.l1d.mshrs);
    }
    for m in &sh.core_l2_mshr {
        assert!(m.peak_occupancy <= h.l2.mshrs);
    }
    assert!(sh.l3_mshr.peak_occupancy <= h.l3.mshrs);
    assert!(sh.pf_l3.peak_occupancy <= h.l3.mshrs);
    assert!(
        sh.l3_mshr.peak_occupancy >= 1,
        "a cold 4-core co-run must allocate shared L3 MSHRs"
    );
    // Stall accounting is internally consistent: expiry guarantees every
    // counted stall waited at least one cycle.
    let cycles = sh.total_mshr_stall_cycles();
    let events: u64 = sh
        .core_l1_mshr
        .iter()
        .chain(sh.core_l2_mshr.iter())
        .map(|m| m.stall_events)
        .sum::<u64>()
        + sh.l3_mshr.stall_events;
    assert_eq!(events == 0, cycles == 0);
}
