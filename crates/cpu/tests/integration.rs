//! Integration tests for the timing driver against real prefetchers and
//! workload kernels.

use std::sync::Arc;

use dol_core::{NoPrefetcher, Prefetcher, Tpc};
use dol_cpu::{DestinationPolicy, System, SystemConfig, Workload};
use dol_isa::{AluOp, Cond, Operand, ProgramBuilder, Reg, Vm};
use dol_mem::{line_of, CacheLevel, MemEvent};

fn stream_vm(n: i64) -> Vm {
    let mut b = ProgramBuilder::new();
    b.imm(Reg::R1, 0x10_0000);
    b.imm(Reg::R2, 0);
    let top = b.label();
    b.bind(top);
    b.load(Reg::R3, Reg::R1, 0);
    b.alu_ri(AluOp::Add, Reg::R1, Reg::R1, 8);
    b.alu_ri(AluOp::Add, Reg::R2, Reg::R2, 1);
    b.branch(Cond::Ne, Reg::R2, Operand::Imm(n), top);
    b.halt();
    Vm::new(b.build().unwrap())
}

#[test]
fn stratified_policy_splits_by_line_set() {
    let w = Workload::capture(stream_vm(8000), 100_000).unwrap();
    // Classify even-indexed lines as "LHF" (to L1), the rest to L2.
    let lhf: dol_isa::DetHashSet<u64> = (0..10_000u64)
        .map(|i| line_of(0x10_0000 + i * 8))
        .filter(|l| l % 2 == 0)
        .collect();
    let mut cfg = SystemConfig::isca2018(1);
    cfg.dest_policy = DestinationPolicy::StratifiedByLine(Arc::new(lhf.clone()));
    let sys = System::new(cfg);
    let mut t2 = Tpc::t2_only();
    let mut sink = dol_mem::CollectSink::new();
    sys.run_with_sink(&w, &mut t2, &mut sink);
    let mut l1_ok = true;
    let mut l2_ok = true;
    let mut both = [0u64; 2];
    for e in &sink.events {
        if let MemEvent::PrefetchIssued { line, dest, .. } = e {
            // Untranslated == translated on core 0.
            let expect_l1 = lhf.contains(line);
            match dest {
                CacheLevel::L1 => {
                    both[0] += 1;
                    l1_ok &= expect_l1;
                }
                CacheLevel::L2 => {
                    both[1] += 1;
                    l2_ok &= !expect_l1;
                }
                CacheLevel::L3 => unreachable!(),
            }
        }
    }
    assert!(
        both[0] > 0 && both[1] > 0,
        "both destinations used: {both:?}"
    );
    assert!(l1_ok, "an L1 prefetch escaped the LHF set");
    assert!(l2_ok, "an L2 prefetch was in the LHF set");
}

#[test]
fn mpc_distinguishes_call_sites_in_real_execution() {
    // Two call sites invoking one function that loads through R10.
    let mut b = ProgramBuilder::new();
    let func = b.label();
    let main = b.label();
    b.jump(main);
    b.bind(func);
    b.load(Reg::R11, Reg::R10, 0);
    b.ret();
    b.bind(main);
    b.imm(Reg::R1, 0x10_0000);
    b.imm(Reg::R2, 0x80_0000);
    b.imm(Reg::R3, 0);
    let top = b.label();
    b.bind(top);
    b.alu_ri(AluOp::Add, Reg::R10, Reg::R1, 0);
    b.call(func);
    b.alu_ri(AluOp::Add, Reg::R10, Reg::R2, 0);
    b.call(func);
    b.alu_ri(AluOp::Add, Reg::R1, Reg::R1, 64);
    b.alu_ri(AluOp::Add, Reg::R2, Reg::R2, 64);
    b.alu_ri(AluOp::Add, Reg::R3, Reg::R3, 1);
    b.branch(Cond::Ne, Reg::R3, Operand::Imm(4000), top);
    b.halt();
    let w = Workload::capture(Vm::new(b.build().unwrap()), 200_000).unwrap();
    let sys = System::new(SystemConfig::isca2018(1));
    let base = sys.run(&w, &mut NoPrefetcher);
    let mut tpc = Tpc::t2_only();
    let mut sink = dol_mem::CollectSink::new();
    let with = sys.run_with_sink(&w, &mut tpc, &mut sink);
    // With mPC both streams are detected as stable strided entries
    // (plain-PC keying would see the deltas flip-flop between the two
    // arrays and reject the instruction).
    let stable = tpc
        .sit()
        .entries()
        .filter(|e| e.delta == 64 && e.stable_for(16))
        .count();
    assert_eq!(stable, 2, "one SIT entry per call site");
    assert!(
        with.stats.cores[0].l1_misses < base.stats.cores[0].l1_misses,
        "prefetching must remove misses ({} vs {})",
        with.stats.cores[0].l1_misses,
        base.stats.cores[0].l1_misses
    );
    // (This microkernel is dispatch-bound, not memory-bound, so the
    // cycle win is small; the suite-level `strided_calls` kernel shows
    // the 2x speedup. Here we check the mechanism, not the cycles.)
    // Prefetches must land on both arrays.
    let lines: std::collections::HashSet<u64> = sink
        .events
        .iter()
        .filter_map(|e| match e {
            MemEvent::PrefetchIssued { line, .. } => Some(*line),
            _ => None,
        })
        .collect();
    assert!(lines.iter().any(|l| *l < line_of(0x80_0000)));
    assert!(lines.iter().any(|l| *l >= line_of(0x80_0000)));
}

#[test]
fn per_core_address_spaces_do_not_alias() {
    // Two cores running the identical program must not share cache lines:
    // each core's L1 misses stay at the cold-miss count of its own copy.
    let w = Workload::capture(stream_vm(2000), 50_000).unwrap();
    let sys = System::new(SystemConfig::isca2018(2));
    let mut a = NoPrefetcher;
    let mut b = NoPrefetcher;
    let r = sys.run_multi(
        &[w.clone(), w.clone()],
        &mut [&mut a as &mut dyn Prefetcher, &mut b as &mut dyn Prefetcher],
    );
    let m0 = r.stats.cores[0].l1_misses;
    let m1 = r.stats.cores[1].l1_misses;
    assert!(m0 > 0 && m1 > 0);
    // If the address spaces aliased, the second core would hit in the
    // shared L3 everywhere; both cores must instead fetch from DRAM.
    assert!(
        r.stats.dram.demand_reads >= m0.min(m1),
        "no cross-core aliasing"
    );
}

#[test]
fn budget_truncates_trace_not_semantics() {
    let full = Workload::capture(stream_vm(100_000), 30_000).unwrap();
    assert_eq!(
        full.trace.len(),
        30_000,
        "budget cuts the infinite-ish loop"
    );
    let sys = System::new(SystemConfig::tiny(1));
    let r = sys.run(&full, &mut NoPrefetcher);
    assert_eq!(r.instructions, 30_000);
}

#[test]
fn force_policies_are_exhaustive_over_requests() {
    let w = Workload::capture(stream_vm(4000), 60_000).unwrap();
    for (policy, level) in [
        (DestinationPolicy::ForceL1, CacheLevel::L1),
        (DestinationPolicy::ForceL2, CacheLevel::L2),
    ] {
        let mut cfg = SystemConfig::isca2018(1);
        cfg.dest_policy = policy;
        let sys = System::new(cfg);
        let mut tpc = Tpc::full();
        let mut sink = dol_mem::CollectSink::new();
        sys.run_with_sink(&w, &mut tpc, &mut sink);
        for e in &sink.events {
            if let MemEvent::PrefetchIssued { dest, .. } = e {
                assert_eq!(*dest, level);
            }
        }
    }
}

#[test]
fn branch_heavy_code_is_penalized() {
    // Same work, once with predictable and once with data-dependent
    // branches: the unpredictable version must cost more cycles.
    let build = |chaotic: bool| {
        let mut b = ProgramBuilder::new();
        b.imm(Reg::R1, 0x9E3779B9);
        b.imm(Reg::R2, 0);
        let top = b.label();
        let skip = b.label();
        b.bind(top);
        b.alu_ri(AluOp::Mul, Reg::R1, Reg::R1, 6364136223846793005);
        b.alu_ri(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.alu_ri(AluOp::Shr, Reg::R3, Reg::R1, 32);
        b.alu_ri(AluOp::And, Reg::R3, Reg::R3, 1);
        if chaotic {
            b.branch(Cond::Eq, Reg::R3, Operand::Imm(0), skip); // 50/50
        } else {
            b.branch(Cond::Lt, Reg::R3, Operand::Imm(99), skip); // always
        }
        b.alu_ri(AluOp::Add, Reg::R2, Reg::R2, 1);
        b.bind(skip);
        b.alu_ri(AluOp::Add, Reg::R2, Reg::R2, 1);
        b.branch(Cond::LtU, Reg::R2, Operand::Imm(100_000), top);
        b.halt();
        Workload::capture(Vm::new(b.build().unwrap()), 60_000).unwrap()
    };
    let sys = System::new(SystemConfig::isca2018(1));
    let predictable = sys.run(&build(false), &mut NoPrefetcher);
    let chaotic = sys.run(&build(true), &mut NoPrefetcher);
    assert!(
        chaotic.mispredicts > predictable.mispredicts * 5,
        "{} vs {}",
        chaotic.mispredicts,
        predictable.mispredicts
    );
    // Cycles-per-instruction must be visibly worse.
    let cpi = |r: &dol_cpu::RunResult| r.cycles as f64 / r.instructions as f64;
    assert!(cpi(&chaotic) > cpi(&predictable) * 1.2);
}
