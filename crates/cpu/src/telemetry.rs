//! Process-wide simulation throughput counters.
//!
//! The system driver adds each run's retired-instruction total to a
//! global counter; harness binaries snapshot it around a figure driver
//! to report simulated instructions per wall-clock second (the
//! `BENCH_sim.json` artifact). One relaxed atomic add per *run* — not
//! per instruction — so the hot loop is untouched.
//!
//! Multi-core runs add the *sum of per-core retired instructions*: a
//! 4-core co-run contributes 4× the instructions of a single-core run
//! of the same length, so single- and multi-core inst/s denominators
//! stay comparable (the simulator did do that much per-core work).

use std::sync::atomic::{AtomicU64, Ordering};

static SIM_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// Adds `n` retired instructions to the process-wide total.
pub(crate) fn record_instructions(n: u64) {
    SIM_INSTRUCTIONS.fetch_add(n, Ordering::Relaxed);
}

/// Total instructions simulated by this process so far (all threads,
/// all runs). Monotone; never reset.
pub fn simulated_instructions() -> u64 {
    SIM_INSTRUCTIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let before = simulated_instructions();
        record_instructions(123);
        record_instructions(2);
        assert!(simulated_instructions() >= before + 125);
    }
}
