#![warn(missing_docs)]

//! Trace-driven timing simulation: an out-of-order-approximate core model
//! and single-/multi-core system drivers.
//!
//! The paper evaluates on gem5 (Table I: 4-wide OoO, 192-entry ROB,
//! 96-entry LSQ, 15-cycle branch-miss penalty). This crate replaces that
//! with a fast *trace-driven* model that preserves what prefetching
//! studies need:
//!
//! * memory-level parallelism bounded by the ROB/LSQ windows and MSHRs,
//! * dependence-limited issue via a register ready-time scoreboard,
//! * front-end stalls from branch mispredictions (gshare + loop
//!   predictor),
//! * per-access latencies from the [`dol_mem::MemorySystem`], and
//! * full prefetcher integration: retire-stream training with `mPC`
//!   (PC ^ RAS.top), request issue with destination-policy overrides
//!   (Figure 16), and value callbacks for pointer-chain prefetchers.
//!
//! Functional execution is prefetcher-independent, so one
//! [`dol_isa::Trace`] per workload is replayed through the timing model
//! under every prefetcher configuration.

mod arena;
mod branch;
mod config;
mod system;
pub mod telemetry;

pub use arena::clear_thread_pools as clear_arena_pools;
pub use branch::BranchPredictor;
pub use config::{CoreConfig, DestinationPolicy, SystemConfig};
pub use system::{MultiRunResult, RunResult, System, Workload};
