//! Core and system configuration.

use std::sync::Arc;

use dol_isa::DetHashSet;
use dol_mem::HierarchyConfig;

/// Out-of-order core parameters (the paper's Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Dispatch/retire width.
    pub width: u32,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Load/store-queue entries.
    pub lsq: usize,
    /// Branch misprediction penalty in cycles.
    pub branch_penalty: u64,
    /// Return-address-stack depth.
    pub ras: usize,
    /// log2 of the gshare table size.
    pub gshare_bits: u32,
}

impl CoreConfig {
    /// The paper's Table I core: 4-wide, 192 ROB, 96 LSQ, 15-cycle
    /// branch-miss penalty, 32-entry RAS.
    pub fn isca2018() -> Self {
        CoreConfig {
            width: 4,
            rob: 192,
            lsq: 96,
            branch_penalty: 15,
            ras: 32,
            gshare_bits: 12,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::isca2018()
    }
}

/// Where prefetch requests actually go (the Figure 16 experiment).
///
/// The paper shows that prefetching everything to L1 beats everything to
/// L2 on average, but *stratified* placement — accurate categories to L1,
/// speculative ones to L2 — is best. TPC stratifies naturally (by
/// component); for monolithic prefetchers stratification requires the
/// offline oracle category map.
#[derive(Debug, Clone, Default)]
pub enum DestinationPolicy {
    /// Honor each request's own destination (TPC's natural behaviour).
    #[default]
    AsRequested,
    /// Force every prefetch into L1.
    ForceL1,
    /// Force every prefetch into L2.
    ForceL2,
    /// Oracle stratification: requests whose target line is in the set
    /// (the offline LHF lines) go to L1, everything else to L2. Line
    /// addresses are in the workload's own (untranslated) address space.
    /// Probed once per issued prefetch request, hence the fast hasher.
    StratifiedByLine(Arc<DetHashSet<u64>>),
}

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Per-core parameters.
    pub core: CoreConfig,
    /// Cache and DRAM parameters.
    pub hierarchy: HierarchyConfig,
    /// Prefetch destination override.
    pub dest_policy: DestinationPolicy,
}

impl SystemConfig {
    /// The paper's Table I configuration for `cores` cores.
    pub fn isca2018(cores: u32) -> Self {
        SystemConfig {
            core: CoreConfig::isca2018(),
            hierarchy: HierarchyConfig::isca2018(cores),
            dest_policy: DestinationPolicy::AsRequested,
        }
    }

    /// A scaled-down configuration for fast tests.
    pub fn tiny(cores: u32) -> Self {
        SystemConfig {
            core: CoreConfig::isca2018(),
            hierarchy: HierarchyConfig::tiny(cores),
            dest_policy: DestinationPolicy::AsRequested,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_values() {
        let c = CoreConfig::isca2018();
        assert_eq!((c.width, c.rob, c.lsq, c.branch_penalty), (4, 192, 96, 15));
        let s = SystemConfig::isca2018(4);
        assert_eq!(s.hierarchy.cores, 4);
    }

    #[test]
    fn default_policy_is_as_requested() {
        assert!(matches!(
            DestinationPolicy::default(),
            DestinationPolicy::AsRequested
        ));
    }
}
