//! Branch prediction: gshare plus a small loop predictor.

/// A gshare direction predictor with a loop-exit side predictor, standing
/// in for the paper's L-TAGE (Table I lists a TAGE with a 256-entry loop
/// predictor; a gshare+loop pair reproduces the relevant behaviour —
/// near-perfect inner loops with occasional exit mispredictions).
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    /// 2-bit saturating counters.
    table: Vec<u8>,
    history: u64,
    mask: u64,
    loop_table: Vec<LoopEntry>,
}

#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    pc: u64,
    /// Taken streak lengths observed.
    trip: u32,
    current: u32,
    confident: bool,
    valid: bool,
}

impl BranchPredictor {
    /// A predictor with `2^bits` gshare counters and 256 loop entries.
    pub fn new(bits: u32) -> Self {
        let size = 1usize << bits;
        BranchPredictor {
            table: vec![2; size], // weakly taken
            history: 0,
            mask: (size - 1) as u64,
            loop_table: vec![LoopEntry::default(); 256],
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }

    fn loop_slot(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.loop_table.len()
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        let le = &self.loop_table[self.loop_slot(pc)];
        if le.valid && le.pc == pc && le.confident {
            // Predict taken until the learned trip count, then not-taken.
            return le.current + 1 < le.trip;
        }
        self.table[self.index(pc)] >= 2
    }

    /// Updates with the actual outcome; returns whether the prediction
    /// was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let predicted = self.predict(pc);
        let idx = self.index(pc);
        let c = &mut self.table[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | taken as u64;

        let slot = self.loop_slot(pc);
        let le = &mut self.loop_table[slot];
        if !le.valid || le.pc != pc {
            *le = LoopEntry {
                pc,
                trip: 0,
                current: 0,
                confident: false,
                valid: true,
            };
        }
        if taken {
            le.current += 1;
        } else {
            // A streak ended; learn the trip count.
            if le.trip == le.current + 1 && le.trip > 2 {
                le.confident = true;
            } else {
                le.confident = le.trip == le.current + 1 && le.confident;
                le.trip = le.current + 1;
            }
            le.current = 0;
        }
        predicted == taken
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new(12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut bp = BranchPredictor::default();
        let mut correct = 0;
        for _ in 0..100 {
            if bp.update(0x100, true) {
                correct += 1;
            }
        }
        assert!(correct >= 95, "always-taken learned, {correct}/100");
    }

    #[test]
    fn loop_predictor_learns_trip_count() {
        let mut bp = BranchPredictor::default();
        // Loop of 8 iterations: 7 taken + 1 not-taken, repeated.
        let mut mispredicts = 0;
        for round in 0..50 {
            for i in 0..8 {
                let taken = i < 7;
                if !bp.update(0x200, taken) && round >= 10 {
                    mispredicts += 1;
                }
            }
        }
        assert!(
            mispredicts <= 8,
            "trip count must be learned after warm-up, {mispredicts} late mispredicts"
        );
    }

    #[test]
    fn alternating_pattern_is_hard_for_gshare_alone_but_bounded() {
        let mut bp = BranchPredictor::default();
        let mut correct = 0;
        for i in 0..200 {
            if bp.update(0x300, i % 2 == 0) {
                correct += 1;
            }
        }
        // gshare with history learns alternation eventually.
        assert!(
            correct > 120,
            "history should capture alternation, got {correct}"
        );
    }
}
