//! Thread-local arenas for per-run transient state.
//!
//! Every [`crate::System`] run used to allocate its working set from the
//! global allocator: the `CoreRt` collections (ROB/LSQ rings, RAS,
//! pending-value heap, retry queues), the prefetch-request out buffer,
//! and — by far the largest — a full [`dol_mem::MemorySystem`] whose
//! cache arrays run to megabytes and were memset on every workload. The
//! figure drivers run thousands of short workload×config combinations,
//! so the allocator and the fresh-page memsets showed up prominently in
//! profiles.
//!
//! This module keeps that state in thread-local pools instead. Core
//! scratch collections are recycled empty-but-warm (capacity retained).
//! Memory systems are recycled through [`dol_mem::MemorySystem::reset`],
//! which restores the exact post-construction state in O(touched lines)
//! — byte-identity of simulation output is therefore preserved, which
//! the reset-equivalence tests in `dol_mem` and the golden-output CI
//! diffs both check.
//!
//! Pools are thread-local on purpose: the sweep runner shards work
//! across threads, and per-thread pools need no locking and no
//! cross-thread state that could perturb run order.

use std::cell::RefCell;

use dol_core::PrefetchRequest;
use dol_mem::{HierarchyConfig, MemorySystem};

/// Recycled backing storage for one `CoreRt`.
#[derive(Default)]
pub(crate) struct CoreScratch {
    pub(crate) rob: std::collections::VecDeque<u64>,
    pub(crate) lsq: std::collections::VecDeque<u64>,
    pub(crate) ras: Vec<u64>,
    pub(crate) pending: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, u16)>>,
    pub(crate) retries: Vec<(u64, u8, PrefetchRequest)>,
    pub(crate) retry_scratch: Vec<(u8, PrefetchRequest)>,
}

/// Upper bound on pooled entries per thread; beyond this, returned state
/// is simply dropped. Runs use one memory system and a handful of core
/// scratches at a time, so a small pool already gives a 100% hit rate.
const POOL_CAP: usize = 8;

thread_local! {
    static CORE_SCRATCH: RefCell<Vec<CoreScratch>> = const { RefCell::new(Vec::new()) };
    static OUT_BUFS: RefCell<Vec<Vec<PrefetchRequest>>> = const { RefCell::new(Vec::new()) };
    static MEM_POOL: RefCell<Vec<MemorySystem>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn acquire_core_scratch() -> CoreScratch {
    CORE_SCRATCH.with(|p| p.borrow_mut().pop().unwrap_or_default())
}

pub(crate) fn release_core_scratch(mut s: CoreScratch) {
    s.rob.clear();
    s.lsq.clear();
    s.ras.clear();
    s.pending.clear();
    s.retries.clear();
    s.retry_scratch.clear();
    CORE_SCRATCH.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < POOL_CAP {
            p.push(s);
        }
    });
}

pub(crate) fn acquire_out_buf() -> Vec<PrefetchRequest> {
    OUT_BUFS.with(|p| {
        p.borrow_mut()
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(32))
    })
}

pub(crate) fn release_out_buf(mut b: Vec<PrefetchRequest>) {
    b.clear();
    OUT_BUFS.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < POOL_CAP {
            p.push(b);
        }
    });
}

/// Drops every pooled arena on the calling thread — core scratch,
/// prefetch out-buffers, and reset memory systems — so the next run
/// rebuilds its working set from the global allocator.
///
/// `run_all --bench-repeat` calls this (via the harness cache clear)
/// between passes: a repeat pass that inherits warm arenas from the
/// previous pass would measure a different allocator profile than the
/// first pass did, making repeats incomparable. Pools are thread-local,
/// so this clears the calling thread only; sweep worker threads are
/// ephemeral and their pools die with them.
pub fn clear_thread_pools() {
    CORE_SCRATCH.with(|p| p.borrow_mut().clear());
    OUT_BUFS.with(|p| p.borrow_mut().clear());
    MEM_POOL.with(|p| p.borrow_mut().clear());
}

/// A memory system for `cfg`: pooled (pristine, reset) when one with the
/// same configuration is available, freshly built otherwise.
pub(crate) fn acquire_memory_system(cfg: HierarchyConfig) -> MemorySystem {
    MEM_POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p.iter().position(|m| *m.config() == cfg) {
            Some(i) => p.swap_remove(i),
            None => MemorySystem::new(cfg),
        }
    })
}

/// Returns a memory system to the pool, reset to its pristine state.
pub(crate) fn release_memory_system(mut m: MemorySystem) {
    MEM_POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < POOL_CAP {
            m.reset();
            p.push(m);
        }
    });
}
