//! The trace-driven system driver.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use dol_core::{AccessInfo, CompletedPrefetch, PrefetchRequest, Prefetcher, RetireInfo};
use dol_isa::{
    InstBlock, InstKind, InstSource, RetiredInst, SparseMemory, Trace, TraceCursor, Vm, VmError,
};
use dol_mem::{line_of, CacheLevel, DropReason, EventSink, MemorySystem, NullSink, SystemStats};

use crate::{BranchPredictor, DestinationPolicy, SystemConfig};

/// Per-core address-space separation for multiprogrammed runs: each
/// core's addresses are offset into a private 1 TiB window before they
/// reach the shared memory system.
const CORE_SPACE_SHIFT: u32 = 40;

/// One workload: a functional trace plus the final memory image (the
/// value source for pointer prefetch callbacks).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Retired-instruction trace.
    pub trace: Trace,
    /// Memory contents after functional execution; pointer-chasing
    /// prefetchers read future pointers from here when their prefetches
    /// complete. Workloads that traverse stable data structures (the
    /// common case) are represented exactly.
    pub memory: SparseMemory,
}

impl Workload {
    /// Runs `vm` for up to `max_insts` instructions and captures the
    /// trace and memory image.
    ///
    /// Executes on the pre-decoded micro-op path ([`Vm::run_uop`]),
    /// which is bit-identical to the reference interpreter (pinned by
    /// the `uop_equivalence` tests); use [`Workload::capture_reference`]
    /// to capture through the interpreter itself.
    pub fn capture(mut vm: Vm, max_insts: u64) -> Result<Workload, VmError> {
        let trace = vm.run_uop(max_insts)?;
        Ok(Workload {
            trace,
            memory: vm.memory().clone(),
        })
    }

    /// Like [`Workload::capture`], but executes on the reference
    /// interpreter ([`Vm::run`]). Exists so equivalence tests can
    /// compare both paths end to end.
    pub fn capture_reference(mut vm: Vm, max_insts: u64) -> Result<Workload, VmError> {
        let trace = vm.run(max_insts)?;
        Ok(Workload {
            trace,
            memory: vm.memory().clone(),
        })
    }
}

/// Result of a single-core run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total cycles (retire time of the last instruction).
    pub cycles: u64,
    /// Instructions simulated.
    pub instructions: u64,
    /// Dispatch-stall cycles by cause: [ROB-full, LSQ-full, branch].
    pub stalls: [u64; 3],
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Memory-system counters.
    pub stats: SystemStats,
}

impl RunResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Result of a multi-core run.
#[derive(Debug, Clone)]
pub struct MultiRunResult {
    /// Per-core (cycles, instructions).
    pub cores: Vec<(u64, u64)>,
    /// Per-core dispatch-stall cycles by cause: [ROB-full, LSQ-full,
    /// branch-mispredict] (diagnostics).
    pub stalls: Vec<[u64; 3]>,
    /// Per-core branch mispredictions.
    pub mispredicts: Vec<u64>,
    /// Shared memory-system counters.
    pub stats: SystemStats,
}

impl MultiRunResult {
    /// Per-core IPC values.
    pub fn ipcs(&self) -> Vec<f64> {
        self.cores
            .iter()
            .map(|&(c, i)| if c == 0 { 0.0 } else { i as f64 / c as f64 })
            .collect()
    }

    /// Instructions retired across all cores — the denominator for
    /// throughput accounting (a 4-core run does 4× the simulation work
    /// of a single-core run of the same length, and is reported so).
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|&(_, i)| i).sum()
    }
}

struct CoreRt<'a, S: InstSource> {
    /// The instruction stream — generic, so both the in-memory trace
    /// path and the on-disk replay path monomorphize to direct calls
    /// (no `dyn` dispatch on the per-retire edge).
    source: S,
    /// One-instruction lookahead; `None` means the stream is drained.
    next: Option<RetiredInst>,
    memory: &'a SparseMemory,
    regs: [u64; dol_isa::Reg::COUNT],
    rob: VecDeque<u64>,
    lsq: VecDeque<u64>,
    dispatch: u64,
    dispatched: u32,
    last_retire: u64,
    ras: Vec<u64>,
    bp: BranchPredictor,
    mispredicts: u64,
    insts: u64,
    /// Dispatch-stall cycles by cause: [rob, lsq, branch] (diagnostics).
    stalls: [u64; 3],
    /// `(completes_at, untranslated addr, origin)` for value callbacks.
    pending: BinaryHeap<Reverse<(u64, u64, u16)>>,
    /// Prefetches rejected for transient reasons (full prefetch queue or
    /// DRAM backpressure), retried after a backoff. Hardware prefetchers
    /// keep rejected requests in their request queues rather than
    /// silently losing coverage.
    retries: Vec<(u64, u8, PrefetchRequest)>,
    /// Reusable scratch for [`System::drain_retries`] (no per-drain
    /// allocation).
    retry_scratch: Vec<(u8, PrefetchRequest)>,
}

impl<'a, S: InstSource> CoreRt<'a, S> {
    fn new(mut source: S, memory: &'a SparseMemory, gshare_bits: u32) -> Self {
        let next = source.next_inst();
        let scratch = crate::arena::acquire_core_scratch();
        CoreRt {
            source,
            next,
            memory,
            regs: [0; dol_isa::Reg::COUNT],
            rob: scratch.rob,
            lsq: scratch.lsq,
            dispatch: 0,
            dispatched: 0,
            last_retire: 0,
            ras: scratch.ras,
            bp: BranchPredictor::new(gshare_bits),
            mispredicts: 0,
            insts: 0,
            stalls: [0; 3],
            pending: scratch.pending,
            retries: scratch.retries,
            retry_scratch: scratch.retry_scratch,
        }
    }

    fn done(&self) -> bool {
        self.next.is_none()
    }

    /// Returns the per-run collections to the thread-local arena and
    /// yields the drained source.
    fn into_source(self) -> S {
        crate::arena::release_core_scratch(crate::arena::CoreScratch {
            rob: self.rob,
            lsq: self.lsq,
            ras: self.ras,
            pending: self.pending,
            retries: self.retries,
            retry_scratch: self.retry_scratch,
        });
        self.source
    }
}

/// The simulation driver: builds a memory system from its configuration
/// and replays workload traces through the timing model under a given
/// prefetcher per core.
#[derive(Debug, Clone)]
pub struct System {
    cfg: SystemConfig,
}

impl System {
    /// Creates a driver for the given configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        System { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Runs one workload on a single core with the given prefetcher,
    /// discarding metric events. Use [`run_with_sink`](Self::run_with_sink)
    /// to observe them.
    pub fn run<P: Prefetcher + ?Sized>(
        &self,
        workload: &Workload,
        prefetcher: &mut P,
    ) -> RunResult {
        self.run_with_sink(workload, prefetcher, &mut NullSink)
    }

    /// Runs one workload on a single core, streaming metric events into
    /// `sink` as the simulation progresses.
    pub fn run_with_sink<P: Prefetcher + ?Sized, S: EventSink + ?Sized>(
        &self,
        workload: &Workload,
        prefetcher: &mut P,
        sink: &mut S,
    ) -> RunResult {
        let (result, _) = self.run_source_with_sink(
            TraceCursor::new(workload.trace.as_slice()),
            &workload.memory,
            prefetcher,
            sink,
        );
        result
    }

    /// Runs an arbitrary instruction source on a single core —
    /// the trace-replay entry point. `memory` is the workload's final
    /// image, the value source for pointer-prefetch callbacks.
    ///
    /// The source is statically dispatched: a streaming on-disk replay
    /// compiles to the same devirtualized per-retire edge as the
    /// in-memory trace path. Returns the drained source so callers can
    /// inspect it (e.g. a replay source's deferred decode error).
    pub fn run_source<I: InstSource, P: Prefetcher + ?Sized>(
        &self,
        source: I,
        memory: &SparseMemory,
        prefetcher: &mut P,
    ) -> (RunResult, I) {
        self.run_source_with_sink(source, memory, prefetcher, &mut NullSink)
    }

    /// Like [`run_source`](Self::run_source), streaming metric events
    /// into `sink`.
    pub fn run_source_with_sink<I: InstSource, P: Prefetcher + ?Sized, S: EventSink + ?Sized>(
        &self,
        source: I,
        memory: &SparseMemory,
        prefetcher: &mut P,
        sink: &mut S,
    ) -> (RunResult, I) {
        let mut prefetchers: [&mut P; 1] = [prefetcher];
        let (multi, mut sources) = self.run_inner(vec![(source, memory)], &mut prefetchers, sink);
        let (cycles, instructions) = multi.cores[0];
        let result = RunResult {
            cycles,
            instructions,
            stalls: multi.stalls[0],
            mispredicts: multi.mispredicts[0],
            stats: multi.stats,
        };
        (result, sources.pop().expect("one core, one source"))
    }

    /// Runs one workload per core (sharing L3 and DRAM), one prefetcher
    /// per core.
    ///
    /// Generic over the prefetcher type: pass `&mut [&mut dyn Prefetcher]`
    /// for heterogeneous boxed designs, or a slice of a concrete type
    /// (e.g. the harness's `Built` enum) to keep the per-retire edge
    /// statically dispatched even in multi-core runs.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` and `prefetchers` lengths differ or exceed
    /// the configured core count.
    pub fn run_multi<P: Prefetcher + ?Sized>(
        &self,
        workloads: &[Workload],
        prefetchers: &mut [&mut P],
    ) -> MultiRunResult {
        self.run_multi_with_sink(workloads, prefetchers, &mut NullSink)
    }

    /// Like [`run_multi`](Self::run_multi), streaming metric events from
    /// all cores into `sink`.
    pub fn run_multi_with_sink<P: Prefetcher + ?Sized, S: EventSink + ?Sized>(
        &self,
        workloads: &[Workload],
        prefetchers: &mut [&mut P],
        sink: &mut S,
    ) -> MultiRunResult {
        let sources: Vec<(TraceCursor<'_>, &SparseMemory)> = workloads
            .iter()
            .map(|w| (TraceCursor::new(w.trace.as_slice()), &w.memory))
            .collect();
        let (result, _) = self.run_inner(sources, prefetchers, sink);
        result
    }

    /// Monomorphized `N`-core co-run: one workload and one prefetcher of
    /// a single concrete type per core. The array sizes tie core count to
    /// the type system, and the concrete `P` keeps static dispatch on the
    /// hot per-retire edge — the multi-core counterpart of
    /// [`run_with_sink`](Self::run_with_sink).
    pub fn run_corun<const N: usize, P: Prefetcher, S: EventSink + ?Sized>(
        &self,
        workloads: &[Workload; N],
        prefetchers: &mut [P; N],
        sink: &mut S,
    ) -> MultiRunResult {
        let sources: Vec<(TraceCursor<'_>, &SparseMemory)> = workloads
            .iter()
            .map(|w| (TraceCursor::new(w.trace.as_slice()), &w.memory))
            .collect();
        let mut refs: Vec<&mut P> = prefetchers.iter_mut().collect();
        let (result, _) = self.run_inner(sources, &mut refs, sink);
        result
    }

    /// The shared scheduling loop. Core arbitration is deterministic
    /// round-robin by timestamp: each iteration steps the non-finished
    /// core with the smallest dispatch cycle, ties broken by lowest core
    /// index (`min_by_key` keeps the first minimum). Shared-hierarchy
    /// state therefore updates in a reproducible order independent of
    /// caller threading — the byte-identity guarantee the CI determinism
    /// gate checks across `--jobs` settings.
    ///
    /// A single-core run has no arbitration to do, so it takes the
    /// block-oriented fast path instead: the source decodes into a
    /// 64-instruction [`InstBlock`] (a bulk copy for in-memory traces)
    /// and the core retires the whole block in a tight loop, hoisting
    /// the per-instruction source call, `Option` lookahead juggling, and
    /// telemetry bucketing out of the retire edge. Both paths retire
    /// through the same [`retire_one`](Self::retire_one), so they
    /// perform identical operations in identical order — blocks are a
    /// throughput vehicle, never a semantic boundary (the
    /// block-boundary equivalence proptests pin this).
    fn run_inner<I: InstSource, P: Prefetcher + ?Sized, S: EventSink + ?Sized>(
        &self,
        sources: Vec<(I, &SparseMemory)>,
        prefetchers: &mut [&mut P],
        sink: &mut S,
    ) -> (MultiRunResult, Vec<I>) {
        self.run_inner_blocked(sources, prefetchers, sink, dol_isa::BLOCK_INSTS)
    }

    /// [`run_inner`](Self::run_inner) with an explicit single-core block
    /// capacity — exposed (hidden) so block-boundary tests can pin that
    /// sizes 1, 7, and 64 all reproduce the stepwise schedule exactly.
    #[doc(hidden)]
    pub fn run_inner_blocked<'a, I: InstSource, P: Prefetcher + ?Sized, S: EventSink + ?Sized>(
        &self,
        sources: Vec<(I, &'a SparseMemory)>,
        prefetchers: &mut [&mut P],
        sink: &mut S,
        block_cap: usize,
    ) -> (MultiRunResult, Vec<I>) {
        assert_eq!(sources.len(), prefetchers.len(), "one prefetcher per core");
        assert!(
            sources.len() <= self.cfg.hierarchy.cores as usize,
            "more workloads than configured cores"
        );
        let mut mem = crate::arena::acquire_memory_system(self.cfg.hierarchy);
        let mut cores: Vec<CoreRt<'a, I>> = sources
            .into_iter()
            .map(|(s, m)| CoreRt::new(s, m, self.cfg.core.gshare_bits))
            .collect();
        let mut out_buf = crate::arena::acquire_out_buf();

        if cores.len() == 1 {
            // Single core: block-oriented retire (see the method docs).
            let c = &mut cores[0];
            let p = &mut *prefetchers[0];
            let mut block = InstBlock::with_capacity(block_cap);
            if let Some(first) = c.next.take() {
                // The constructor's one-instruction lookahead retires
                // first; everything after streams through blocks.
                c.insts += 1;
                self.retire_one(0, c, first, p, &mut mem, &mut out_buf, sink);
                loop {
                    c.source.next_block(&mut block);
                    if block.is_empty() {
                        break;
                    }
                    c.insts += block.len() as u64;
                    for &inst in block.as_slice() {
                        self.retire_one(0, c, inst, p, &mut mem, &mut out_buf, sink);
                    }
                }
            }
        } else {
            // Multi-core: interleave cores by current dispatch cycle.
            loop {
                let next = cores
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !c.done())
                    .min_by_key(|(_, c)| c.dispatch)
                    .map(|(i, _)| i);
                let Some(i) = next else { break };
                self.step_inst(
                    i,
                    &mut cores[i],
                    &mut *prefetchers[i],
                    &mut mem,
                    &mut out_buf,
                    sink,
                );
            }
        }

        let per_core: Vec<(u64, u64)> = cores.iter().map(|c| (c.last_retire, c.insts)).collect();
        let mispredicts: Vec<u64> = cores.iter().map(|c| c.mispredicts).collect();
        let stalls: Vec<[u64; 3]> = cores.iter().map(|c| c.stalls).collect();
        let stats = mem.stats();
        crate::telemetry::record_instructions(per_core.iter().map(|&(_, i)| i).sum());
        crate::arena::release_out_buf(out_buf);
        crate::arena::release_memory_system(mem);
        let result = MultiRunResult {
            cores: per_core,
            stalls,
            mispredicts,
            stats,
        };
        (result, cores.into_iter().map(|c| c.into_source()).collect())
    }

    #[inline]
    fn xlate(core: usize, addr: u64) -> u64 {
        addr.wrapping_add((core as u64) << CORE_SPACE_SHIFT)
    }

    fn deliver_pending<I: InstSource, P: Prefetcher + ?Sized, S: EventSink + ?Sized>(
        &self,
        core_idx: usize,
        c: &mut CoreRt<'_, I>,
        prefetcher: &mut P,
        mem: &mut MemorySystem,
        out: &mut Vec<PrefetchRequest>,
        sink: &mut S,
    ) {
        while let Some(&Reverse((t, addr, origin))) = c.pending.peek() {
            if t > c.dispatch {
                break;
            }
            c.pending.pop();
            let value = c.memory.read_u64(addr);
            let pf = CompletedPrefetch {
                now: t,
                addr,
                origin: dol_mem::Origin(origin),
                value,
            };
            out.clear();
            prefetcher.on_prefetch_complete(&pf, out);
            let requests = std::mem::take(out);
            self.issue_requests(core_idx, c, &requests, t, mem, sink);
            *out = requests;
        }
    }

    fn issue_requests<I: InstSource, S: EventSink + ?Sized>(
        &self,
        core_idx: usize,
        c: &mut CoreRt<'_, I>,
        requests: &[PrefetchRequest],
        now: u64,
        mem: &mut MemorySystem,
        sink: &mut S,
    ) {
        self.issue_requests_attempt(core_idx, c, requests, now, mem, 0, sink);
    }

    #[allow(clippy::too_many_arguments)] // internal helper threading the run context
    fn issue_requests_attempt<I: InstSource, S: EventSink + ?Sized>(
        &self,
        core_idx: usize,
        c: &mut CoreRt<'_, I>,
        requests: &[PrefetchRequest],
        now: u64,
        mem: &mut MemorySystem,
        attempt: u8,
        sink: &mut S,
    ) {
        for req in requests {
            let dest = match &self.cfg.dest_policy {
                DestinationPolicy::AsRequested => req.dest,
                DestinationPolicy::ForceL1 => CacheLevel::L1,
                DestinationPolicy::ForceL2 => CacheLevel::L2,
                DestinationPolicy::StratifiedByLine(lhf) => {
                    if lhf.contains(&line_of(req.addr)) {
                        CacheLevel::L1
                    } else {
                        CacheLevel::L2
                    }
                }
            };
            let outcome = mem.prefetch(
                core_idx,
                Self::xlate(core_idx, req.addr),
                dest,
                req.origin,
                req.confidence,
                now,
                sink,
            );
            if outcome.accepted && req.want_value {
                c.pending
                    .push(Reverse((outcome.completes_at, req.addr, req.origin.0)));
            }
            // Transient rejections back off and retry (twice at most).
            if !outcome.accepted
                && attempt < 2
                && c.retries.len() < 256
                && matches!(
                    outcome.drop_reason,
                    Some(DropReason::NoMshr) | Some(DropReason::QueueFull)
                )
            {
                c.retries.push((now + 96, attempt + 1, *req));
            }
        }
    }

    fn drain_retries<I: InstSource, S: EventSink + ?Sized>(
        &self,
        core_idx: usize,
        c: &mut CoreRt<'_, I>,
        mem: &mut MemorySystem,
        sink: &mut S,
    ) {
        if c.retries.is_empty() {
            return;
        }
        let now = c.dispatch;
        let mut due = std::mem::take(&mut c.retry_scratch);
        c.retries.retain(|&(t, a, req)| {
            if t <= now {
                due.push((a, req));
                false
            } else {
                true
            }
        });
        for &(attempt, req) in &due {
            self.issue_requests_attempt(core_idx, c, &[req], now, mem, attempt, sink);
        }
        due.clear();
        c.retry_scratch = due;
    }

    /// Advances one instruction through the lookahead (multi-core path;
    /// the single-core block path pulls whole [`InstBlock`]s instead and
    /// calls [`retire_one`](Self::retire_one) directly).
    fn step_inst<I: InstSource, P: Prefetcher + ?Sized, S: EventSink + ?Sized>(
        &self,
        core_idx: usize,
        c: &mut CoreRt<'_, I>,
        prefetcher: &mut P,
        mem: &mut MemorySystem,
        out: &mut Vec<PrefetchRequest>,
        sink: &mut S,
    ) {
        let inst = c.next.take().expect("step_inst on a drained core");
        c.next = c.source.next_inst();
        c.insts += 1;
        self.retire_one(core_idx, c, inst, prefetcher, mem, out, sink);
    }

    /// Retires one instruction through the timing model: value-callback
    /// delivery and retry drain at the current dispatch cycle, then
    /// width/ROB/LSQ accounting, dependence-limited issue, the
    /// per-kind completion model, and prefetcher training/issue. Both
    /// the stepwise and block schedulers funnel through here, so block
    /// boundaries cannot change simulated behavior.
    #[allow(clippy::too_many_arguments)] // internal helper threading the run context
    fn retire_one<I: InstSource, P: Prefetcher + ?Sized, S: EventSink + ?Sized>(
        &self,
        core_idx: usize,
        c: &mut CoreRt<'_, I>,
        inst: RetiredInst,
        prefetcher: &mut P,
        mem: &mut MemorySystem,
        out: &mut Vec<PrefetchRequest>,
        sink: &mut S,
    ) {
        let cfg = &self.cfg.core;
        self.deliver_pending(core_idx, c, prefetcher, mem, out, sink);
        self.drain_retries(core_idx, c, mem, sink);

        // Front-end width.
        if c.dispatched >= cfg.width {
            c.dispatch += 1;
            c.dispatched = 0;
        }
        // ROB occupancy: dispatching into a full window waits for the
        // head to retire.
        if c.rob.len() >= cfg.rob {
            let head = c.rob.pop_front().expect("rob non-empty");
            if head > c.dispatch {
                c.stalls[0] += head - c.dispatch;
                c.dispatch = head;
                c.dispatched = 0;
            }
        }
        if inst.is_mem() && c.lsq.len() >= cfg.lsq {
            let head = c.lsq.pop_front().expect("lsq non-empty");
            if head > c.dispatch {
                c.stalls[1] += head - c.dispatch;
                c.dispatch = head;
                c.dispatched = 0;
            }
        }

        // Dependence-limited issue.
        let mut issue = c.dispatch;
        for s in inst.srcs.iter().flatten() {
            issue = issue.max(c.regs[s.index()]);
        }

        let ras_top = c.ras.last().copied().unwrap_or(0);
        let mut access: Option<AccessInfo> = None;
        let complete = match inst.kind {
            InstKind::Alu { latency } => issue + latency as u64,
            InstKind::Load { addr, .. } | InstKind::Store { addr } => {
                let is_write = matches!(inst.kind, InstKind::Store { .. });
                let outcome = mem.demand_access(
                    core_idx,
                    Self::xlate(core_idx, addr),
                    is_write,
                    issue,
                    inst.pc,
                    sink,
                );
                access = Some(AccessInfo {
                    l1_hit: outcome.l1_hit,
                    secondary: outcome.l1_secondary,
                    latency: outcome.latency,
                    served_by_prefetch: outcome.served_by_prefetch,
                });
                let mem_done = issue + outcome.latency;
                c.lsq.push_back(mem_done);
                if is_write {
                    // The store buffer hides store latency from the core.
                    issue + 1
                } else {
                    mem_done
                }
            }
            InstKind::Branch { taken, .. } => {
                let resolve = issue + 1;
                if !c.bp.update(inst.pc, taken) {
                    c.mispredicts += 1;
                    let redirect = resolve + cfg.branch_penalty;
                    if redirect > c.dispatch {
                        c.stalls[2] += redirect - c.dispatch;
                        c.dispatch = redirect;
                        c.dispatched = 0;
                    }
                }
                resolve
            }
            InstKind::Call { return_to, .. } => {
                if c.ras.len() >= cfg.ras {
                    c.ras.remove(0);
                }
                c.ras.push(return_to);
                issue + 1
            }
            InstKind::Ret { .. } => {
                c.ras.pop();
                issue + 1
            }
            InstKind::Jump { .. } | InstKind::Other => issue + 1,
        };

        if let Some(dst) = inst.dst {
            c.regs[dst.index()] = complete;
        }
        let retire = complete.max(c.last_retire);
        c.last_retire = retire;
        c.rob.push_back(retire);
        c.dispatched += 1;

        // Prefetcher training and issue.
        let mpc = if inst.is_mem() {
            inst.pc ^ ras_top
        } else {
            inst.pc
        };
        let ev = RetireInfo {
            now: issue,
            inst: &inst,
            mpc,
            access,
        };
        out.clear();
        prefetcher.on_retire(&ev, out);
        if !out.is_empty() {
            let requests = std::mem::take(out);
            self.issue_requests(core_idx, c, &requests, issue, mem, sink);
            *out = requests;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dol_core::{NoPrefetcher, Tpc};
    use dol_isa::{AluOp, Cond, Operand, ProgramBuilder, Reg};
    use dol_mem::MemEvent;

    /// A linear streaming-sum kernel touching `n` consecutive words.
    fn stream_workload(n: i64) -> Workload {
        let mut b = ProgramBuilder::new();
        let (base, i, cnt, sum, t) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        b.imm(base, 0x10_0000);
        b.imm(i, 0);
        b.imm(cnt, n);
        b.imm(sum, 0);
        let top = b.label();
        b.bind(top);
        b.load(t, base, 0);
        b.alu_rr(AluOp::Add, sum, sum, t);
        b.alu_ri(AluOp::Add, base, base, 8);
        b.alu_ri(AluOp::Add, i, i, 1);
        b.branch(Cond::Ne, i, Operand::Reg(cnt), top);
        b.halt();
        let mut vm = Vm::new(b.build().unwrap());
        for k in 0..n as u64 {
            vm.memory_mut().write_u64(0x10_0000 + 8 * k, k);
        }
        Workload::capture(vm, 10_000_000).unwrap()
    }

    /// A pointer-chase kernel over a scrambled list of `n` nodes.
    fn chase_workload(n: u64) -> Workload {
        let mut b = ProgramBuilder::new();
        let (cur, cnt) = (Reg::R1, Reg::R2);
        b.imm(cur, 0x40_0000);
        b.imm(cnt, n as i64 - 1);
        let top = b.label();
        b.bind(top);
        b.load(cur, cur, 8); // cur = cur->next (offset 8)
        b.alu_ri(AluOp::Sub, cnt, cnt, 1);
        b.branch(Cond::Ne, cnt, Operand::Imm(0), top);
        b.halt();
        let mut vm = Vm::new(b.build().unwrap());
        // Scrambled node layout: node k at 0x40_0000 + perm(k) * 192.
        let addr_of = |k: u64| 0x40_0000 + ((k * 7919) % n) * 192;
        for k in 0..n {
            let this = if k == 0 { 0x40_0000 } else { addr_of(k) };
            let next = if k + 1 < n { addr_of(k + 1) } else { 0x40_0000 };
            vm.memory_mut().write_u64(this + 8, next);
        }
        Workload::capture(vm, 10_000_000).unwrap()
    }

    #[test]
    fn baseline_run_is_deterministic() {
        let w = stream_workload(2000);
        let sys = System::new(SystemConfig::tiny(1));
        let a = sys.run(&w, &mut NoPrefetcher);
        let b = sys.run(&w, &mut NoPrefetcher);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert!(a.cycles > 0);
        assert_eq!(a.instructions as usize, w.trace.len());
    }

    #[test]
    fn t2_speeds_up_a_streaming_kernel() {
        let w = stream_workload(8000);
        let sys = System::new(SystemConfig::isca2018(1));
        let base = sys.run(&w, &mut NoPrefetcher);
        let mut t2 = Tpc::t2_only();
        let with = sys.run(&w, &mut t2);
        let speedup = base.cycles as f64 / with.cycles as f64;
        assert!(
            speedup > 1.10,
            "T2 must speed up streaming: {speedup:.3} (base {} vs {})",
            base.cycles,
            with.cycles
        );
        assert!(with.stats.cores[0].prefetches > 100);
    }

    #[test]
    fn tpc_speeds_up_pointer_chasing() {
        let w = chase_workload(6000);
        let sys = System::new(SystemConfig::isca2018(1));
        let base = sys.run(&w, &mut NoPrefetcher);
        let mut tpc = Tpc::full();
        let with = sys.run(&w, &mut tpc);
        let speedup = base.cycles as f64 / with.cycles as f64;
        assert!(
            speedup > 1.02,
            "P1 chains must help: {speedup:.3} (base {} vs {})",
            base.cycles,
            with.cycles
        );
    }

    #[test]
    fn run_source_matches_run() {
        let w = chase_workload(4000);
        let sys = System::new(SystemConfig::tiny(1));
        let mut tpc = Tpc::full();
        let baseline = sys.run(&w, &mut tpc);
        let mut tpc = Tpc::full();
        let (via_source, _) =
            sys.run_source(TraceCursor::new(w.trace.as_slice()), &w.memory, &mut tpc);
        assert_eq!(baseline.cycles, via_source.cycles);
        assert_eq!(baseline.instructions, via_source.instructions);
        assert_eq!(baseline.stalls, via_source.stalls);
        assert_eq!(baseline.mispredicts, via_source.mispredicts);
    }

    #[test]
    fn prefetching_never_breaks_instruction_count() {
        let w = stream_workload(3000);
        let sys = System::new(SystemConfig::tiny(1));
        let mut tpc = Tpc::full();
        let r = sys.run(&w, &mut tpc);
        assert_eq!(r.instructions as usize, w.trace.len());
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn multicore_shares_the_hierarchy() {
        let w1 = stream_workload(3000);
        let w2 = chase_workload(2000);
        let sys = System::new(SystemConfig::tiny(2));
        let mut p1 = Tpc::full();
        let mut p2 = Tpc::full();
        let r = sys.run_multi(
            &[w1.clone(), w2.clone()],
            &mut [
                &mut p1 as &mut dyn Prefetcher,
                &mut p2 as &mut dyn Prefetcher,
            ],
        );
        assert_eq!(r.cores.len(), 2);
        assert_eq!(r.cores[0].1 as usize, w1.trace.len());
        assert_eq!(r.cores[1].1 as usize, w2.trace.len());
        assert!(r.ipcs().iter().all(|&ipc| ipc > 0.0));
        // Both cores miss in their own L1s.
        assert!(r.stats.cores[0].l1_misses > 0);
        assert!(r.stats.cores[1].l1_misses > 0);
    }

    #[test]
    fn run_corun_matches_run_multi_and_counts_all_cores() {
        let w1 = stream_workload(3000);
        let w2 = chase_workload(2000);
        let sys = System::new(SystemConfig::tiny(2));
        let mut d1 = Tpc::full();
        let mut d2 = Tpc::full();
        let dyn_r = sys.run_multi(
            &[w1.clone(), w2.clone()],
            &mut [
                &mut d1 as &mut dyn Prefetcher,
                &mut d2 as &mut dyn Prefetcher,
            ],
        );
        let before = crate::telemetry::simulated_instructions();
        let mut ps = [Tpc::full(), Tpc::full()];
        let r = sys.run_corun(&[w1.clone(), w2.clone()], &mut ps, &mut NullSink);
        // Static dispatch must reproduce the dyn path exactly.
        assert_eq!(r.cores, dyn_r.cores);
        assert_eq!(r.stats, dyn_r.stats);
        // The throughput denominator counts per-core retired
        // instructions: both cores' traces, not one "run".
        assert_eq!(
            r.total_instructions() as usize,
            w1.trace.len() + w2.trace.len()
        );
        // >= because other tests may add to the global counter in
        // parallel; the co-run's own contribution is the full sum.
        assert!(crate::telemetry::simulated_instructions() >= before + r.total_instructions());
    }

    #[test]
    fn multicore_contention_slows_cores_down() {
        let w = stream_workload(6000);
        let solo = System::new(SystemConfig::isca2018(1)).run(&w, &mut NoPrefetcher);
        let sys = System::new(SystemConfig::isca2018(4));
        let ws = vec![w.clone(), w.clone(), w.clone(), w.clone()];
        let mut ps: Vec<NoPrefetcher> = vec![NoPrefetcher; 4];
        let mut refs: Vec<&mut dyn Prefetcher> =
            ps.iter_mut().map(|p| p as &mut dyn Prefetcher).collect();
        let r = sys.run_multi(&ws, &mut refs);
        // Shared DRAM bandwidth: at least one core should be no faster
        // than running alone.
        let worst = r.cores.iter().map(|&(c, _)| c).max().unwrap();
        assert!(
            worst >= solo.cycles,
            "contention: worst {worst} vs solo {}",
            solo.cycles
        );
    }

    #[test]
    fn force_l2_policy_redirects_prefetches() {
        let w = stream_workload(4000);
        let mut cfg = SystemConfig::isca2018(1);
        cfg.dest_policy = DestinationPolicy::ForceL2;
        let sys = System::new(cfg);
        let mut t2 = Tpc::t2_only();
        let mut sink = dol_mem::CollectSink::new();
        sys.run_with_sink(&w, &mut t2, &mut sink);
        let issued: Vec<&MemEvent> = sink
            .events
            .iter()
            .filter(|e| matches!(e, MemEvent::PrefetchIssued { .. }))
            .collect();
        assert!(!issued.is_empty());
        assert!(issued.iter().all(|e| matches!(
            e,
            MemEvent::PrefetchIssued {
                dest: CacheLevel::L2,
                ..
            }
        )));
    }

    #[test]
    fn mispredicts_are_counted() {
        // A data-dependent unpredictable branch pattern.
        let mut b = ProgramBuilder::new();
        let (i, n, x) = (Reg::R1, Reg::R2, Reg::R3);
        b.imm(i, 0);
        b.imm(n, 2000);
        b.imm(x, 0x9E3779B9);
        let top = b.label();
        let skip = b.label();
        b.bind(top);
        // x = x * 6364136223846793005 + 1 (pseudo-random)
        b.alu_ri(AluOp::Mul, x, x, 6364136223846793005);
        b.alu_ri(AluOp::Add, x, x, 1);
        b.alu_ri(AluOp::Shr, x, x, 33);
        b.branch(Cond::Eq, x, Operand::Imm(0), skip); // rarely taken
        b.alu_ri(AluOp::And, x, x, 0xFFFF);
        b.bind(skip);
        b.alu_ri(AluOp::Add, i, i, 1);
        b.branch(Cond::Ne, i, Operand::Reg(n), top);
        b.halt();
        let vm = Vm::new(b.build().unwrap());
        let w = Workload::capture(vm, 1_000_000).unwrap();
        let sys = System::new(SystemConfig::tiny(1));
        let r = sys.run(&w, &mut NoPrefetcher);
        // The loop branch itself is predictable; total mispredicts must
        // be far below iteration count but structure is exercised.
        assert!(r.instructions > 10_000);
    }
}
