#![warn(missing_docs)]

//! A vendored, dependency-free stand-in for the subset of the
//! [criterion](https://crates.io/crates/criterion) API this workspace
//! uses, so `cargo bench` works with `CARGO_NET_OFFLINE=true` and an
//! empty registry cache.
//!
//! The statistics are deliberately simple: each benchmark runs a warm-up
//! phase, then `sample_size` timed samples (each sample auto-scales its
//! iteration count toward `measurement_time / sample_size`), and reports
//! min / median / mean per-iteration wall time, plus throughput when
//! configured. There are no plots, no outlier classification, and no
//! saved baselines. To run under real upstream criterion, point the
//! `criterion` entry of `[workspace.dependencies]` back at crates.io
//! (requires network access).

use std::time::{Duration, Instant};

/// Opaque value sink (re-exported for bench code; upstream reimplements
/// this, std has it since 1.66).
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benches_run: usize,
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }

    /// Prints the run footer (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!("\n{} benchmark(s) complete", self.benches_run);
    }
}

/// A named collection of benchmarks sharing sampling parameters.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        report(&label, &b.samples, self.throughput);
        self.criterion.benches_run += 1;
        self
    }

    /// Ends the group (upstream writes reports here; we have none).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    warm_up_time: Duration,
    sample_size: usize,
    measurement_time: Duration,
    /// Collected (iterations, elapsed) samples.
    samples: Vec<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine`, auto-scaling iterations per sample so the whole
    /// benchmark lands near the configured measurement time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until the warm-up budget elapses, measuring the
        // mean iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);

        // Aim each sample at measurement_time / sample_size.
        let sample_budget =
            (self.measurement_time.as_nanos() as u64 / self.sample_size.max(1) as u64).max(1);
        let iters_per_sample = (sample_budget / per_iter.max(1)).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push((iters_per_sample, start.elapsed()));
        }
    }
}

fn report(label: &str, samples: &[(u64, Duration)], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:40} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = samples
        .iter()
        .map(|(iters, d)| d.as_nanos() as f64 / *iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let mut line = format!(
        "{label:40} time: [min {} median {} mean {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
    if let Some(t) = throughput {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = n as f64 / (median / 1e9);
        line.push_str(&format!(" thrpt: {rate:.3e} {unit}/s"));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function (upstream: `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench entry point (upstream: `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        g.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.finish();
        assert!(calls > 0, "routine must have run");
    }

    #[test]
    fn throughput_formatting_does_not_panic() {
        report(
            "x",
            &[(10, Duration::from_micros(50))],
            Some(Throughput::Elements(1000)),
        );
        report("y", &[], None);
    }
}
