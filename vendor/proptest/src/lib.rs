#![warn(missing_docs)]

//! A vendored, dependency-free stand-in for the subset of the
//! [proptest](https://crates.io/crates/proptest) API this workspace uses.
//!
//! The workspace must build and test with `CARGO_NET_OFFLINE=true` and an
//! empty registry cache, so external dev-dependencies are off the table:
//! cargo resolves every dependency in every manifest against the registry
//! index even when a feature never activates it. This crate is wired into
//! `[workspace.dependencies]` under the name `proptest`, so the property
//! test files keep their upstream-compatible source form (`use
//! proptest::prelude::*;`, `proptest! { ... }`, `prop_assert!`).
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: every test draws its cases from a fixed-seed
//!   [`rng::TestRng`] derived from the test's name, so failures reproduce
//!   without a persistence file. Set `PROPTEST_CASES` to change the case
//!   count (default 64).
//! * **No shrinking**: a failing case panics with the sampled inputs via
//!   the standard assert message; there is no minimization pass.
//! * **Strategies sample directly** — `Strategy` here is "something that
//!   can produce a value from an RNG", not a lazy value tree.
//!
//! To run the property tests under real upstream proptest instead, point
//! the `proptest` entry of `[workspace.dependencies]` back at crates.io
//! (requires network access).

pub mod rng {
    //! The deterministic generator backing every strategy.

    /// SplitMix64 step; used to diffuse seeds into full state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// xoshiro256** generator: fast, tiny, and plenty for test sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates a generator whose stream is fully determined by `seed`.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            TestRng { s }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `0..n` (`n > 0`).
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "index() needs a nonempty range");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-producing strategies and combinators.

    use crate::rng::TestRng;
    use std::ops::Range;

    /// Something that can produce one sampled value per call.
    ///
    /// Unlike upstream proptest this is not a lazy value tree; `sample`
    /// draws a concrete value immediately.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps sampled values through `f` (upstream: `Strategy::prop_map`).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// The `prop_map` combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Modular span in u64 handles signed ranges whose width
                    // exceeds the signed type's max.
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Types with a canonical "any value" strategy (upstream:
    /// `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// An unconstrained value of `T` (upstream: `any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Boxes a strategy for heterogeneous collections ([`one_of`]).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// The strategy behind the `prop_oneof!` macro: picks one of its
    /// member strategies uniformly, then samples it.
    pub struct OneOf<T>(Vec<Box<dyn Strategy<Value = T>>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.0.len());
            self.0[i].sample(rng)
        }
    }

    /// Builds a [`OneOf`] from boxed member strategies.
    pub fn one_of<T>(choices: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        OneOf(choices)
    }
}

pub mod collection {
    //! Collection strategies (upstream: `proptest::collection`).

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + if span == 0 { 0 } else { rng.index(span) };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector whose elements come from `element` and whose length lies
    /// in `size` (upstream: `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    //! The per-test case loop.

    use crate::rng::TestRng;

    /// Default number of cases per property (upstream default: 256; kept
    /// smaller because several properties drive whole-system simulations).
    pub const DEFAULT_CASES: u32 = 64;

    /// Stable, platform-independent hash of the test name (FNV-1a), so
    /// each test gets its own — but reproducible — stream.
    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        h
    }

    /// Number of cases to run, honoring `PROPTEST_CASES`.
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES)
            .max(1)
    }

    /// Runs `body` once per case with a case-specific deterministic RNG.
    pub fn run(test_name: &str, mut body: impl FnMut(&mut TestRng)) {
        let base = fnv1a(test_name);
        for case in 0..cases() as u64 {
            let mut rng = TestRng::seed_from_u64(base ^ case.wrapping_mul(0x9E3779B97F4A7C15));
            body(&mut rng);
        }
    }
}

/// Declares deterministic property tests (upstream: `proptest!`).
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a standard
/// `#[test]` that samples its arguments [`test_runner::cases`] times.
/// Attributes (including `#[test]` itself and doc comments) pass through.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )+
    };
}

/// Asserts a condition inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tok:tt)*) => { assert!($($tok)*) };
}

/// Asserts equality inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tok:tt)*) => { assert_eq!($($tok)*) };
}

/// Asserts inequality inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tok:tt)*) => { assert_ne!($($tok)*) };
}

/// Picks uniformly among member strategies (upstream: `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::boxed($s)),+])
    };
}

pub mod prelude {
    //! Everything a property test file needs (upstream:
    //! `proptest::prelude`).

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rng::TestRng;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::seed_from_u64(42);
        let mut b = TestRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = TestRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let s = (-5i64..5).sample(&mut rng);
            assert!((-5..5).contains(&s));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..200 {
            let v = crate::collection::vec(0u64..10, 3..7).sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::seed_from_u64(11);
        let s = prop_oneof![Just(1u64), Just(2), Just(3)].prop_map(|x| x * 10);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v == 10 || v == 20 || v == 30);
        }
    }

    proptest! {
        /// The macro itself: tuple + vec sampling end to end.
        #[test]
        fn macro_generates_cases(xs in crate::collection::vec((0u64..100, any::<u64>()), 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for (a, _b) in &xs {
                prop_assert!(*a < 100);
            }
        }
    }
}
