//! Cross-crate end-to-end behaviour: workloads → timing model →
//! prefetchers → metrics.

use dol_core::{NoPrefetcher, Prefetcher, Tpc};
use dol_cpu::{System, SystemConfig, Workload};
use dol_harness::prefetchers;
use dol_mem::{CacheLevel, CollectSink};
use dol_metrics::{scope, StreamingMetrics};

const BUDGET: u64 = 120_000;

fn capture(name: &str) -> Workload {
    let spec = dol_workloads::by_name(name).unwrap_or_else(|| panic!("workload {name}"));
    Workload::capture(spec.build_vm(11), BUDGET).expect("workload runs")
}

fn sys() -> System {
    System::new(SystemConfig::isca2018(1))
}

#[test]
fn every_comparison_prefetcher_completes_every_suite_workload() {
    // Smoke over the full matrix at a small budget: no panics, sane
    // outputs, instruction counts preserved.
    let sys = sys();
    for spec in dol_workloads::all_workloads() {
        let w = Workload::capture(spec.build_vm(5), 30_000).expect("runs");
        for cfg in prefetchers::COMPARISON_SET {
            let mut p = prefetchers::build(cfg).expect("known config");
            let r = sys.run(&w, &mut p);
            assert_eq!(
                r.instructions as usize,
                w.trace.len(),
                "{cfg} on {} lost instructions",
                spec.name
            );
            assert!(r.cycles > 0);
        }
    }
}

#[test]
fn tpc_beats_baseline_on_every_stride_kernel() {
    let sys = sys();
    for name in [
        "stream_sum",
        "stream_triad",
        "unrolled_copy",
        "stencil3",
        "matrix_row",
    ] {
        let w = capture(name);
        let base = sys.run(&w, &mut NoPrefetcher);
        let mut tpc = Tpc::full();
        let with = sys.run(&w, &mut tpc);
        let speedup = base.cycles as f64 / with.cycles as f64;
        assert!(
            speedup > 1.3,
            "{name}: expected a clear win, got {speedup:.3}"
        );
    }
}

#[test]
fn tpc_never_catastrophically_hurts() {
    // The composite's high accuracy must keep the worst case mild across
    // the whole spec21 suite (the paper's robustness claim).
    let sys = sys();
    for spec in dol_workloads::spec21() {
        let w = Workload::capture(spec.build_vm(11), BUDGET).expect("runs");
        let base = sys.run(&w, &mut NoPrefetcher);
        let mut tpc = Tpc::full();
        let with = sys.run(&w, &mut tpc);
        let speedup = base.cycles as f64 / with.cycles as f64;
        assert!(
            speedup > 0.85,
            "{}: TPC must not badly hurt, got {speedup:.3}",
            spec.name
        );
    }
}

#[test]
fn runs_are_deterministic() {
    let sys = sys();
    let w = capture("gather_window");
    let mut a = Tpc::full();
    let mut b = Tpc::full();
    let mut sink_a = CollectSink::new();
    let mut sink_b = CollectSink::new();
    let ra = sys.run_with_sink(&w, &mut a, &mut sink_a);
    let rb = sys.run_with_sink(&w, &mut b, &mut sink_b);
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ra.stats, rb.stats);
    assert_eq!(sink_a.events, sink_b.events);
}

#[test]
fn t2_has_near_perfect_accuracy_on_canonical_streams() {
    let sys = sys();
    let w = capture("stream_sum");
    let mut base_sm = StreamingMetrics::new();
    let base = sys.run_with_sink(&w, &mut NoPrefetcher, &mut base_sm);
    assert!(base.cycles > 0);
    let mut t2 = Tpc::t2_only();
    let mut sm = StreamingMetrics::new();
    let _with = sys.run_with_sink(&w, &mut t2, &mut sm);
    let acc = sm.accuracy_at(CacheLevel::L1, None);
    assert!(
        acc.effective_accuracy() > 0.9,
        "T2 accuracy on its home pattern: {:.3}",
        acc.effective_accuracy()
    );
    let fp = base_sm.footprint(CacheLevel::L1);
    let pfp = sm.prefetched_lines_all();
    assert!(scope(fp, pfp) > 0.9, "T2 scope on a pure stream");
}

#[test]
fn tpc_traffic_overhead_is_small_on_streams() {
    let sys = sys();
    let w = capture("stream_triad");
    let base = sys.run(&w, &mut NoPrefetcher);
    let mut tpc = Tpc::full();
    let with = sys.run(&w, &mut tpc);
    let ratio = with.stats.dram.total_traffic_lines() as f64
        / base.stats.dram.total_traffic_lines().max(1) as f64;
    assert!(
        ratio < 1.15,
        "accurate prefetching must not inflate traffic much: {ratio:.3}"
    );
}

#[test]
fn multicore_weighted_speedup_is_positive_for_tpc() {
    let sys4 = System::new(SystemConfig::isca2018(4));
    let sys1 = sys();
    let names = ["stream_sum", "region_shuffle", "hash_probe", "spmv_csr"];
    let ws: Vec<Workload> = names.iter().map(|n| capture(n)).collect();
    let alone: Vec<f64> = ws
        .iter()
        .map(|w| sys1.run(w, &mut NoPrefetcher).ipc())
        .collect();

    let run4 = |mk: &dyn Fn() -> Box<dyn Prefetcher>| {
        let mut ps: Vec<Box<dyn Prefetcher>> = (0..4).map(|_| mk()).collect();
        let mut refs: Vec<&mut dyn Prefetcher> = ps
            .iter_mut()
            .map(|p| p.as_mut() as &mut dyn Prefetcher)
            .collect();
        let r = sys4.run_multi(&ws, &mut refs);
        dol_metrics::weighted_speedup(&r.ipcs(), &alone)
    };
    let ws_none = run4(&|| Box::new(NoPrefetcher));
    let ws_tpc = run4(&|| Box::new(Tpc::full()));
    assert!(
        ws_tpc > ws_none,
        "TPC must lift the mix: {ws_tpc:.3} vs {ws_none:.3}"
    );
}

#[test]
fn composite_and_shunt_configs_run_end_to_end() {
    let sys = sys();
    let w = capture("histogram");
    for cfg in ["TPC+SMS", "TPC|SMS", "TPC+VLDP", "TPC|VLDP"] {
        let mut p = prefetchers::build(cfg).expect("combinator config");
        let r = sys.run(&w, &mut p);
        assert!(r.cycles > 0);
        assert_eq!(p.name(), cfg);
    }
}
