//! Ignored diagnostic: per-app embedded suite comparison.
use dol_cpu::{System, SystemConfig};
use dol_harness::runner::{AppRun, BaselineRun};
use dol_harness::RunPlan;

#[test]
#[ignore]
fn embedded_gap() {
    let plan = RunPlan {
        insts: 400_000,
        mix_count: 2,
        ..RunPlan::full()
    };
    let sys = System::new(SystemConfig::isca2018(1));
    for suite in [
        dol_workloads::embedded(),
        dol_workloads::graphs(),
        dol_workloads::scientific(),
    ] {
        for spec in suite {
            let base = BaselineRun::capture(&spec, &plan, &sys);
            let fdp = AppRun::run(&base, "FDP", &sys).speedup(&base);
            let tpc = AppRun::run(&base, "TPC", &sys).speedup(&base);
            println!("{:20} FDP {:.3} TPC {:.3}", base.name, fdp, tpc);
        }
    }
}
