//! Ignored diagnostic for the rotate_img store-stream interaction.
use dol_core::{NoPrefetcher, TpcBuilder, TpcConfig};
use dol_cpu::{System, SystemConfig, Workload};
use dol_mem::CacheLevel;

#[test]
#[ignore]
fn rotate_variants() {
    let spec = dol_workloads::by_name("rotate_img").unwrap();
    let w = Workload::capture(spec.build_vm(2018), 400_000).unwrap();
    let sys = System::new(SystemConfig::isca2018(1));
    let base = sys.run(&w, &mut NoPrefetcher);
    println!("base {} l1m {}", base.cycles, base.stats.cores[0].l1_misses);
    let variants: Vec<(&str, TpcConfig)> = vec![
        ("default(m=128,L2route)", TpcConfig::default()),
        (
            "margin=64",
            TpcConfig {
                margin: 64,
                ..TpcConfig::default()
            },
        ),
        (
            "force accurate L2 for all",
            TpcConfig {
                accurate_dest: CacheLevel::L2,
                ..TpcConfig::default()
            },
        ),
    ];
    for (name, cfg) in variants {
        let mut p = TpcBuilder::new().config(cfg).name("v").build();
        let r = sys.run(&w, &mut p);
        println!(
            "{name}: cycles {} speedup {:.3} l1m {} l2m {} pf {} dram d/p {} {}",
            r.cycles,
            base.cycles as f64 / r.cycles as f64,
            r.stats.cores[0].l1_misses,
            r.stats.cores[0].l2_misses,
            r.stats.cores[0].prefetches,
            r.stats.dram.demand_reads,
            r.stats.dram.prefetch_reads
        );
    }
}
