//! Development diagnostics (run with `--ignored`): detailed breakdowns
//! that helped calibrate the memory model. Kept as executable
//! documentation of the timeliness methodology.

use dol_baselines::Fdp;
use dol_core::{NoPrefetcher, Prefetcher, Tpc};
use dol_cpu::{System, SystemConfig, Workload};
use dol_mem::{CacheLevel, CollectSink, DropReason, MemEvent, Origin};

#[test]
#[ignore]
fn stream_gap() {
    let spec = dol_workloads::by_name("stream_sum").unwrap();
    let w = Workload::capture(spec.build_vm(2018), 300_000).unwrap();
    let sys = System::new(SystemConfig::isca2018(1));
    let base = sys.run(&w, &mut NoPrefetcher);
    println!(
        "base: cycles {} l1m {} avglat {:.1}",
        base.cycles,
        base.stats.cores[0].l1_misses,
        base.stats.cores[0].latency_sum as f64 / base.stats.cores[0].accesses as f64
    );
    {
        let mut t2 = Tpc::t2_only();
        let _ = sys.run(&w, &mut t2);
        println!(
            "T2 state: amat {} t_iter {:?} distance {}",
            t2.amat(),
            t2.loop_hardware().active_loop().map(|l| l.t_iter()),
            t2.distance()
        );
    }
    let runs: Vec<(&str, Box<dyn Prefetcher>)> = vec![
        ("T2", Box::new(Tpc::t2_only())),
        ("FDP", Box::new(Fdp::new(Origin(20), CacheLevel::L1))),
    ];
    for (name, mut p) in runs {
        let mut sink = CollectSink::new();
        let r = sys.run_with_sink(&w, p.as_mut(), &mut sink);
        let mut issued = 0u64;
        let mut dropped = [0u64; 4];
        let mut useful = 0u64;
        for e in &sink.events {
            match e {
                MemEvent::PrefetchIssued { .. } => issued += 1,
                MemEvent::PrefetchDropped { reason, .. } => {
                    dropped[match reason {
                        DropReason::Redundant => 0,
                        DropReason::InFlight => 1,
                        DropReason::NoMshr => 2,
                        DropReason::QueueFull => 3,
                    }] += 1
                }
                MemEvent::PrefetchUseful {
                    level: CacheLevel::L1,
                    ..
                } => useful += 1,
                _ => {}
            }
        }
        println!(
            "{name}: cycles {} speedup {:.3} l1m {} avglat {:.1} issued {} useful {} dropped {:?}",
            r.cycles,
            base.cycles as f64 / r.cycles as f64,
            r.stats.cores[0].l1_misses,
            r.stats.cores[0].latency_sum as f64 / r.stats.cores[0].accesses as f64,
            issued,
            useful,
            dropped
        );
    }
}
